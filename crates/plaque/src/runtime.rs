//! The PLAQUE-replacement runtime: per-host workers executing sharded
//! dataflow programs over the simulated DCN.
//!
//! One worker task runs per host; it owns every shard placed on that
//! host, across all concurrently-running programs (the substrate is
//! multi-tenant, §4.3's "background housekeeping" included). Messages to
//! the same destination host produced in one delivery round are coalesced
//! into a single DCN message (batching for throughput); asynchronous
//! [`Emitter`](crate::Emitter) sends bypass the batcher (low latency).

use pathways_sim::hash::FxHashMap;
use pathways_sim::Lock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use pathways_net::{Fabric, HostId, Router};
use pathways_sim::channel::{self, OneshotReceiver};
use pathways_sim::{IdleToken, SimHandle};

use crate::graph::{EdgeId, Graph, NodeId};
use crate::operator::{Operator, ShardCore, ShardCtx};
use crate::progress::ProgressTracker;
use crate::tuple::Tuple;

/// Identifier of one launched program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(pub u64);

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run{}", self.0)
    }
}

/// Wire size of a Start message per shard.
const START_BYTES: u64 = 64;

/// Messages exchanged by plaque workers.
#[derive(Debug)]
pub enum PlaqueMsg {
    /// Begin executing a shard (sent by the launching client).
    Start {
        /// Program run.
        run: RunId,
        /// Node to start.
        node: NodeId,
        /// Shard index to start.
        shard: u32,
    },
    /// A data tuple on a sharded edge.
    Data {
        /// Program run.
        run: RunId,
        /// Edge carrying the tuple.
        edge: EdgeId,
        /// Producing shard.
        src_shard: u32,
        /// Destination shard.
        dst_shard: u32,
        /// Payload.
        tuple: Tuple,
    },
    /// Punctuation: `src_shard` sent `sent` tuples to `dst_shard` on
    /// `edge` and will send no more.
    Done {
        /// Program run.
        run: RunId,
        /// Edge being punctuated.
        edge: EdgeId,
        /// Producing shard.
        src_shard: u32,
        /// Destination shard.
        dst_shard: u32,
        /// Exact tuple count promised to the destination.
        sent: u64,
    },
}

struct Slot {
    op: Box<dyn Operator>,
    core: Arc<Lock<ShardCore>>,
    trackers: FxHashMap<EdgeId, ProgressTracker>,
    started: bool,
    pending: Vec<PlaqueMsg>,
    inputs_complete_fired: bool,
}

type ShardKey = (RunId, NodeId, u32);
type ShardMap = Arc<Lock<FxHashMap<ShardKey, Arc<Lock<Slot>>>>>;

struct RunEntry {
    remaining: u32,
    done_tx: Option<channel::OneshotSender<()>>,
}

/// Pending `(destination, message, bytes)` triples coalescing into one
/// NIC message per destination at the end of the current micro-step.
type EgressBuffer = Vec<(HostId, PlaqueMsg, u64)>;

/// Cloneable shared state used by contexts and emitters.
#[derive(Clone)]
pub struct RuntimeShared {
    pub(crate) handle: SimHandle,
    router: Router<Vec<PlaqueMsg>>,
    runs: Arc<Lock<FxHashMap<RunId, RunEntry>>>,
    /// Per-host shard tables (shared with the workers) so completed
    /// shards can be reclaimed as soon as they finalize — long-running
    /// benchmarks launch thousands of runs and must not accumulate
    /// dead slots.
    workers: Arc<Lock<FxHashMap<HostId, ShardMap>>>,
    /// Per-source-host egress buffers for the asynchronous (emitter)
    /// path: messages emitted within the same virtual instant coalesce
    /// into one NIC message per destination host. This adds no virtual
    /// latency (the flush runs after one executor micro-step) and is
    /// what keeps punctuation storms from O(M x N) sharded edges off
    /// the NICs — §4.3's batching requirement.
    async_egress: Arc<Lock<FxHashMap<HostId, EgressBuffer>>>,
}

impl fmt::Debug for RuntimeShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeShared")
            .field("live_runs", &self.runs.lock().len())
            .finish()
    }
}

impl RuntimeShared {
    /// Groups messages by destination host (deterministically) and sends
    /// one batched DCN message per host.
    pub(crate) fn route_from(&self, src: HostId, msgs: Vec<(HostId, PlaqueMsg, u64)>) {
        let mut by_host: BTreeMap<HostId, (Vec<PlaqueMsg>, u64)> = BTreeMap::new();
        for (dst, msg, bytes) in msgs {
            let entry = by_host.entry(dst).or_default();
            entry.0.push(msg);
            entry.1 += bytes;
        }
        for (dst, (batch, bytes)) in by_host {
            self.router.send(src, dst, batch, bytes);
        }
    }

    /// Queues messages on the source host's egress buffer; everything
    /// queued within one virtual instant flushes as one batch.
    pub(crate) fn route_from_async(&self, src: HostId, msgs: Vec<(HostId, PlaqueMsg, u64)>) {
        if msgs.is_empty() {
            return;
        }
        let mut egress = self.async_egress.lock();
        let entry = egress.entry(src).or_default();
        let need_flush = entry.is_empty();
        entry.extend(msgs);
        drop(egress);
        if need_flush {
            let shared = self.clone();
            self.handle
                .clone()
                .spawn(format!("plaque-flush-{src}"), async move {
                    shared.handle.yield_now().await;
                    let msgs = shared.async_egress.lock().remove(&src).unwrap_or_default();
                    shared.route_from(src, msgs);
                });
        }
    }

    /// Marks a shard complete in its run's tracking and reclaims its
    /// slot (idempotent).
    pub(crate) fn finalize_shard(&self, core: &Arc<Lock<ShardCore>>) {
        let (run, node, shard, host) = {
            let mut core = core.lock();
            if core.finalized {
                return;
            }
            core.finalized = true;
            (core.run, core.node, core.shard, core.host)
        };
        // Reclaim the slot: late messages to it are dropped by dispatch.
        if let Some(map) = self.workers.lock().get(&host) {
            map.lock().remove(&(run, node, shard));
        }
        let mut runs = self.runs.lock();
        let entry = runs.get_mut(&run).expect("run entry missing");
        entry.remaining -= 1;
        if entry.remaining == 0 {
            if let Some(tx) = entry.done_tx.take() {
                let _ = tx.send(());
            }
            runs.remove(&run);
        }
    }
}

/// The sharded dataflow runtime.
#[derive(Clone)]
pub struct PlaqueRuntime {
    shared: RuntimeShared,
    workers: Arc<Lock<FxHashMap<HostId, ShardMap>>>,
    next_run: Arc<Lock<u64>>,
}

impl fmt::Debug for PlaqueRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlaqueRuntime")
            .field("workers", &self.workers.lock().len())
            .finish()
    }
}

/// Handle to a launched program run.
#[derive(Debug)]
pub struct RunHandle {
    id: RunId,
    done: OneshotReceiver<()>,
}

impl RunHandle {
    /// The run's id.
    pub fn id(&self) -> RunId {
        self.id
    }

    /// Resolves when every shard of the program has halted.
    pub async fn await_done(self) {
        self.done.await.expect("plaque runtime dropped mid-run");
    }

    /// Splits the handle into its raw completion receiver, for callers
    /// that must race completion against another signal (e.g. a failure
    /// notification: a run partitioned by a severed DCN link can never
    /// deliver the punctuations its completion tracking needs, so its
    /// client abandons it on error delivery instead).
    pub fn into_done_receiver(self) -> OneshotReceiver<()> {
        self.done
    }
}

impl PlaqueRuntime {
    /// Creates a runtime over `fabric`.
    pub fn new(fabric: Fabric) -> Self {
        let handle = fabric.handle().clone();
        let workers: Arc<Lock<FxHashMap<HostId, ShardMap>>> =
            Arc::new(Lock::new(FxHashMap::default()));
        PlaqueRuntime {
            shared: RuntimeShared {
                handle,
                router: Router::new(fabric),
                runs: Arc::new(Lock::named("plaque.runs", FxHashMap::default())),
                workers: Arc::clone(&workers),
                async_egress: Arc::new(Lock::new(FxHashMap::default())),
            },
            workers,
            next_run: Arc::new(Lock::new(0)),
        }
    }

    /// Ensures a worker task is running on `host`; returns its shard map.
    fn ensure_worker(&self, host: HostId) -> ShardMap {
        if let Some(map) = self.workers.lock().get(&host) {
            return Arc::clone(map);
        }
        let map: ShardMap = Arc::new(Lock::named("plaque.shard_map", FxHashMap::default()));
        self.workers.lock().insert(host, Arc::clone(&map));
        let mut inbox = self.shared.router.register(host);
        let shared = self.shared.clone();
        let map_task = Arc::clone(&map);
        let token = IdleToken::new();
        let token_task = token.clone();
        self.shared
            .handle
            .spawn_service(format!("plaque-worker-{host}"), &token, async move {
                loop {
                    token_task.set_idle();
                    let Some(env) = inbox.recv().await else { break };
                    token_task.set_busy();
                    let mut egress: Vec<(HostId, PlaqueMsg, u64)> = Vec::new();
                    for msg in env.msg {
                        Self::dispatch(&shared, &map_task, msg, &mut egress);
                    }
                    if !egress.is_empty() {
                        shared.route_from(host, egress);
                    }
                }
            });
        map
    }

    fn dispatch(
        shared: &RuntimeShared,
        map: &ShardMap,
        msg: PlaqueMsg,
        egress: &mut Vec<(HostId, PlaqueMsg, u64)>,
    ) {
        let key = match &msg {
            PlaqueMsg::Start { run, node, shard } => (*run, *node, *shard),
            PlaqueMsg::Data {
                run,
                edge,
                dst_shard,
                ..
            }
            | PlaqueMsg::Done {
                run,
                edge,
                dst_shard,
                ..
            } => {
                // If no shard of the run remains on this host, the run
                // already completed here; drop the late message.
                let Some(node) = Self::dst_node_of(map, *run, *edge) else {
                    return;
                };
                (*run, node, *dst_shard)
            }
        };
        let slot_rc = {
            let map = map.lock();
            match map.get(&key) {
                Some(s) => Arc::clone(s),
                // The shard already halted and its slot was reclaimed;
                // late punctuations are dropped.
                None => return,
            }
        };
        match msg {
            PlaqueMsg::Start { .. } => {
                {
                    let mut slot = slot_rc.lock();
                    assert!(!slot.started, "shard started twice");
                    slot.started = true;
                    let core = Arc::clone(&slot.core);
                    let mut ctx = ShardCtx {
                        core: &core,
                        shared,
                        egress,
                    };
                    slot.op.on_start(&mut ctx);
                }
                // Replay messages that raced ahead of Start.
                let pending = std::mem::take(&mut slot_rc.lock().pending);
                for m in pending {
                    Self::deliver(shared, &slot_rc, m, egress);
                }
                Self::check_inputs_complete(shared, &slot_rc, egress);
            }
            data_or_done => {
                if !slot_rc.lock().started {
                    slot_rc.lock().pending.push(data_or_done);
                    return;
                }
                Self::deliver(shared, &slot_rc, data_or_done, egress);
                Self::check_inputs_complete(shared, &slot_rc, egress);
            }
        }
    }

    /// Destination node of `edge`, resolved from any slot of the run on
    /// this host (all slots of a run share the graph).
    fn dst_node_of(map: &ShardMap, run: RunId, edge: EdgeId) -> Option<NodeId> {
        let map = map.lock();
        let slot = map
            .iter()
            .find(|((r, _, _), _)| *r == run)
            .map(|(_, s)| Arc::clone(s))?;
        let core = slot.lock();
        let graph = core.core.lock().graph.clone();
        let (_, dst) = graph.edge_endpoints(edge);
        Some(dst)
    }

    fn deliver(
        shared: &RuntimeShared,
        slot_rc: &Arc<Lock<Slot>>,
        msg: PlaqueMsg,
        egress: &mut Vec<(HostId, PlaqueMsg, u64)>,
    ) {
        let mut slot = slot_rc.lock();
        if slot.core.lock().halted {
            return; // late messages to an already-halted shard
        }
        let core = Arc::clone(&slot.core);
        match msg {
            PlaqueMsg::Data {
                edge,
                src_shard,
                tuple,
                ..
            } => {
                slot.trackers
                    .get_mut(&edge)
                    .unwrap_or_else(|| panic!("data on unexpected {edge}"))
                    .record_data(src_shard);
                let mut ctx = ShardCtx {
                    core: &core,
                    shared,
                    egress,
                };
                slot.op.on_tuple(&mut ctx, edge, src_shard, tuple);
                if slot
                    .trackers
                    .get_mut(&edge)
                    .expect("checked")
                    .take_completion()
                {
                    let mut ctx = ShardCtx {
                        core: &core,
                        shared,
                        egress,
                    };
                    slot.op.on_edge_complete(&mut ctx, edge);
                }
            }
            PlaqueMsg::Done {
                edge,
                src_shard,
                sent,
                ..
            } => {
                slot.trackers
                    .get_mut(&edge)
                    .unwrap_or_else(|| panic!("punctuation on unexpected {edge}"))
                    .record_done(src_shard, sent);
                if slot
                    .trackers
                    .get_mut(&edge)
                    .expect("checked")
                    .take_completion()
                {
                    let mut ctx = ShardCtx {
                        core: &core,
                        shared,
                        egress,
                    };
                    slot.op.on_edge_complete(&mut ctx, edge);
                }
            }
            PlaqueMsg::Start { .. } => unreachable!("Start handled by dispatch"),
        }
    }

    fn check_inputs_complete(
        shared: &RuntimeShared,
        slot_rc: &Arc<Lock<Slot>>,
        egress: &mut Vec<(HostId, PlaqueMsg, u64)>,
    ) {
        let mut slot = slot_rc.lock();
        if slot.inputs_complete_fired || slot.core.lock().halted {
            return;
        }
        if slot.trackers.values().all(|t| t.is_complete()) {
            slot.inputs_complete_fired = true;
            let core = Arc::clone(&slot.core);
            let mut ctx = ShardCtx {
                core: &core,
                shared,
                egress,
            };
            slot.op.on_all_inputs_complete(&mut ctx);
        }
    }

    /// Launches `graph` as a new run. Shard slots are installed on each
    /// participating host; a single batched Start message per host (the
    /// "one message for the whole subgraph" pattern of §4.5) is sent from
    /// `client_host`.
    pub fn launch(&self, graph: &Graph, client_host: HostId) -> RunHandle {
        self.launch_inner(graph, client_host, true)
    }

    /// Installs the run's shard slots without sending Start messages.
    ///
    /// Use with [`PlaqueRuntime::start_local`]: an external control
    /// plane (the Pathways scheduler's grant messages) carries the
    /// start signal with its own fan-out, so the dataflow launch costs
    /// no extra DCN messages — the start information piggybacks on the
    /// grant (§4.5's single subgraph message).
    pub fn launch_unstarted(&self, graph: &Graph) -> RunHandle {
        self.launch_inner(graph, HostId(0), false)
    }

    /// Starts a shard in place on `host`, as if its Start message had
    /// just been delivered there. Must be called from a task logically
    /// running on `host` (e.g. that host's executor processing a grant
    /// that carried the start information).
    ///
    /// # Panics
    ///
    /// Panics if the shard was not installed on `host`.
    pub fn start_local(&self, host: HostId, run: RunId, node: NodeId, shard: u32) {
        let map = {
            let workers = self.workers.lock();
            Arc::clone(
                workers
                    .get(&host)
                    .unwrap_or_else(|| panic!("start_local on {host} with no plaque worker")),
            )
        };
        let mut egress: Vec<(HostId, PlaqueMsg, u64)> = Vec::new();
        Self::dispatch(
            &self.shared,
            &map,
            PlaqueMsg::Start { run, node, shard },
            &mut egress,
        );
        if !egress.is_empty() {
            self.shared.route_from(host, egress);
        }
    }

    fn launch_inner(&self, graph: &Graph, client_host: HostId, send_starts: bool) -> RunHandle {
        let run = {
            let mut next = self.next_run.lock();
            let id = RunId(*next);
            *next += 1;
            id
        };
        let total_shards: u32 = graph.nodes().map(|n| graph.shards(n)).sum();
        let (done_tx, done_rx) = channel::oneshot();
        self.shared.runs.lock().insert(
            run,
            RunEntry {
                remaining: total_shards,
                done_tx: Some(done_tx),
            },
        );
        // Install shard slots.
        let mut starts: Vec<(HostId, PlaqueMsg, u64)> = Vec::new();
        for node in graph.nodes() {
            for (shard, &host) in graph.placement(node).iter().enumerate() {
                let shard = shard as u32;
                let map = self.ensure_worker(host);
                let core = Arc::new(Lock::new(ShardCore::new(
                    run,
                    node,
                    shard,
                    host,
                    graph.clone(),
                )));
                let mut trackers = FxHashMap::default();
                for &e in graph.in_edges(node) {
                    trackers.insert(e, ProgressTracker::new(graph.expected_srcs(e, shard)));
                }
                let factory = Arc::clone(&graph.inner.nodes[node.index()].factory);
                let op = factory(shard);
                let prev = map.lock().insert(
                    (run, node, shard),
                    Arc::new(Lock::new(Slot {
                        op,
                        core,
                        trackers,
                        started: false,
                        pending: Vec::new(),
                        inputs_complete_fired: false,
                    })),
                );
                assert!(prev.is_none(), "duplicate shard deployment");
                starts.push((host, PlaqueMsg::Start { run, node, shard }, START_BYTES));
            }
        }
        // One batched message per destination host.
        if send_starts {
            self.shared.route_from(client_host, starts);
        }
        RunHandle {
            id: run,
            done: done_rx,
        }
    }

    /// The simulation handle.
    pub fn handle(&self) -> &SimHandle {
        &self.shared.handle
    }

    /// Number of runs still executing.
    pub fn live_runs(&self) -> usize {
        self.shared.runs.lock().len()
    }

    /// True while `run` has shards that have not halted.
    pub fn is_live(&self, run: RunId) -> bool {
        self.shared.runs.lock().contains_key(&run)
    }

    /// Allocates a fresh [`RunId`] without installing anything — used for
    /// runs that fail before launch (their output objects still need
    /// unique identities for error delivery).
    pub fn reserve_run_id(&self) -> RunId {
        let mut next = self.next_run.lock();
        let id = RunId(*next);
        *next += 1;
        id
    }

    /// Force-starts every not-yet-started shard of `run`, in
    /// deterministic `(host, node, shard)` order.
    ///
    /// This is the failure-propagation path: a run whose scheduler
    /// grants were dropped (evicted, or lost with a dead host) has shard
    /// slots that would otherwise never start and hence never halt,
    /// wedging [`RunHandle::await_done`] forever. Starting them lets
    /// their operators run their abort paths and wind the run down to a
    /// clean completion.
    pub fn force_start_run(&self, run: RunId) {
        let mut targets: Vec<(HostId, NodeId, u32)> = Vec::new();
        {
            let workers = self.workers.lock();
            for (&host, map) in workers.iter() {
                for ((r, node, shard), slot) in map.lock().iter() {
                    if *r == run && !slot.lock().started {
                        targets.push((host, *node, *shard));
                    }
                }
            }
        }
        targets.sort();
        for (host, node, shard) in targets {
            self.start_local(host, run, node, shard);
        }
    }
}
