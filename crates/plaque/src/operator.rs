//! Operator callbacks and the per-shard context.
//!
//! An [`Operator`] is the user logic of one shard of one node. Callbacks
//! run on the shard's host; outputs buffered through [`ShardCtx`] are
//! coalesced into one DCN message per destination host per delivery
//! round (the "batch messages destined for the same host" requirement of
//! §4.3), while an [`Emitter`] sends immediately for latency-critical
//! messages from async tasks (the "send critical messages with low
//! latency" requirement).

use pathways_sim::hash::FxHashMap;
use pathways_sim::Lock;
use std::fmt;
use std::sync::Arc;

use pathways_net::HostId;
use pathways_sim::{SimHandle, SimTime};

use crate::graph::{EdgeId, Graph, NodeId};
use crate::runtime::{PlaqueMsg, RunId, RuntimeShared};
use crate::tuple::Tuple;

/// Wire-size overhead charged per data tuple message.
pub(crate) const DATA_OVERHEAD_BYTES: u64 = 32;
/// Wire size of a punctuation message.
pub(crate) const DONE_BYTES: u64 = 16;

/// User logic for one shard of a dataflow node.
///
/// All methods have defaults so simple operators implement only what
/// they need. The default [`Operator::on_all_inputs_complete`] halts the
/// shard; operators that keep emitting from spawned tasks must override
/// it and call [`Emitter::halt`] themselves when finished.
pub trait Operator: Send {
    /// Called once when the shard starts (before any input).
    fn on_start(&mut self, ctx: &mut ShardCtx<'_>) {
        let _ = ctx;
    }

    /// Called for every data tuple arriving on an in-edge.
    fn on_tuple(&mut self, ctx: &mut ShardCtx<'_>, edge: EdgeId, src_shard: u32, tuple: Tuple) {
        let _ = (ctx, edge, src_shard, tuple);
    }

    /// Called when progress tracking proves an in-edge has delivered
    /// everything addressed to this shard.
    fn on_edge_complete(&mut self, ctx: &mut ShardCtx<'_>, edge: EdgeId) {
        let _ = (ctx, edge);
    }

    /// Called when every in-edge is complete (immediately after
    /// [`Operator::on_start`] for source nodes). Default: halt the shard.
    fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
        ctx.halt();
    }
}

/// An operator that does nothing and halts as soon as its inputs finish.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullOperator;

impl Operator for NullOperator {}

/// Mutable, shared per-shard bookkeeping.
pub(crate) struct ShardCore {
    pub run: RunId,
    pub node: NodeId,
    pub shard: u32,
    pub host: HostId,
    pub graph: Graph,
    /// Per out-edge, per destination shard: tuples sent so far.
    pub sent: FxHashMap<EdgeId, Vec<u64>>,
    /// Out-edges already punctuated.
    pub edge_done: FxHashMap<EdgeId, bool>,
    /// Shard declared finished.
    pub halted: bool,
    /// Completion was already propagated to the run tracker.
    pub finalized: bool,
}

impl ShardCore {
    pub fn new(run: RunId, node: NodeId, shard: u32, host: HostId, graph: Graph) -> Self {
        let mut sent = FxHashMap::default();
        let mut edge_done = FxHashMap::default();
        for &e in graph.out_edges(node) {
            let (_, dst) = graph.edge_endpoints(e);
            sent.insert(e, vec![0; graph.shards(dst) as usize]);
            edge_done.insert(e, false);
        }
        ShardCore {
            run,
            node,
            shard,
            host,
            graph,
            sent,
            edge_done,
            halted: false,
            finalized: false,
        }
    }

    /// Validates and accounts one send; returns the destination host.
    pub fn record_send(&mut self, edge: EdgeId, dst_shard: u32) -> HostId {
        assert!(!self.halted, "shard sent a tuple after halting");
        let done = *self
            .edge_done
            .get(&edge)
            .unwrap_or_else(|| panic!("{edge} is not an out-edge of {}", self.node));
        assert!(!done, "shard sent a tuple on {edge} after punctuating it");
        let counts = self.sent.get_mut(&edge).expect("validated above");
        assert!(
            (dst_shard as usize) < counts.len(),
            "destination shard {dst_shard} out of range on {edge}"
        );
        assert!(
            self.graph
                .reachable_dst_shards(edge, self.shard)
                .contains(&dst_shard),
            "shard {} cannot address destination shard {dst_shard} on {edge} under its mapping",
            self.shard
        );
        counts[dst_shard as usize] += 1;
        let (_, dst) = self.graph.edge_endpoints(edge);
        self.graph.placement(dst)[dst_shard as usize]
    }

    /// Marks an out-edge punctuated and returns the punctuation messages
    /// to deliver: one per destination shard this shard *may address*
    /// under the edge mapping, with its exact count. Sparse mappings keep
    /// this O(1) per shard rather than O(destination shards).
    pub fn punctuate(&mut self, edge: EdgeId) -> Vec<(HostId, PlaqueMsg, u64)> {
        let done = self
            .edge_done
            .get_mut(&edge)
            .unwrap_or_else(|| panic!("{edge} is not an out-edge of {}", self.node));
        assert!(!*done, "{edge} punctuated twice");
        *done = true;
        let counts = self.sent.get(&edge).expect("out-edge has counts").clone();
        let (_, dst) = self.graph.edge_endpoints(edge);
        self.graph
            .reachable_dst_shards(edge, self.shard)
            .into_iter()
            .map(|d| {
                let host = self.graph.placement(dst)[d as usize];
                (
                    host,
                    PlaqueMsg::Done {
                        run: self.run,
                        edge,
                        src_shard: self.shard,
                        dst_shard: d,
                        sent: counts[d as usize],
                    },
                    DONE_BYTES,
                )
            })
            .collect()
    }

    /// Punctuates all remaining out-edges and marks the shard halted.
    pub fn halt(&mut self) -> Vec<(HostId, PlaqueMsg, u64)> {
        assert!(!self.halted, "shard halted twice");
        self.halted = true;
        let open: Vec<EdgeId> = self
            .edge_done
            .iter()
            .filter(|(_, done)| !**done)
            .map(|(e, _)| *e)
            .collect();
        let mut msgs = Vec::new();
        let mut open = open;
        open.sort();
        for e in open {
            msgs.extend(self.punctuate(e));
        }
        msgs
    }
}

/// Context handed to operator callbacks. Sends are buffered and coalesced
/// per destination host when the callback round finishes.
pub struct ShardCtx<'a> {
    pub(crate) core: &'a Arc<Lock<ShardCore>>,
    pub(crate) shared: &'a RuntimeShared,
    pub(crate) egress: &'a mut Vec<(HostId, PlaqueMsg, u64)>,
}

impl fmt::Debug for ShardCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.core.lock();
        f.debug_struct("ShardCtx")
            .field("node", &core.node)
            .field("shard", &core.shard)
            .finish()
    }
}

impl ShardCtx<'_> {
    /// This shard's index within its node.
    pub fn shard(&self) -> u32 {
        self.core.lock().shard
    }

    /// The program run this shard belongs to.
    pub fn run(&self) -> RunId {
        self.core.lock().run
    }

    /// The host this shard runs on.
    pub fn host(&self) -> HostId {
        self.core.lock().host
    }

    /// Number of destination shards on `edge`.
    pub fn dst_shards(&self, edge: EdgeId) -> u32 {
        let core = self.core.lock();
        let (_, dst) = core.graph.edge_endpoints(edge);
        core.graph.shards(dst)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.handle.now()
    }

    /// The simulation handle, for spawning asynchronous shard work.
    pub fn handle(&self) -> &SimHandle {
        &self.shared.handle
    }

    /// Sends `tuple` to `dst_shard` on `edge` (buffered; batched per
    /// destination host).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not an out-edge of this node, the destination
    /// shard is out of range, or the edge was already punctuated.
    pub fn send(&mut self, edge: EdgeId, dst_shard: u32, tuple: Tuple) {
        let mut core = self.core.lock();
        let host = core.record_send(edge, dst_shard);
        let bytes = tuple.bytes() + DATA_OVERHEAD_BYTES;
        self.egress.push((
            host,
            PlaqueMsg::Data {
                run: core.run,
                edge,
                src_shard: core.shard,
                dst_shard,
                tuple,
            },
            bytes,
        ));
    }

    /// Sends `tuple` to every destination shard of `edge`.
    pub fn broadcast(&mut self, edge: EdgeId, tuple: Tuple) {
        for d in 0..self.dst_shards(edge) {
            self.send(edge, d, tuple.clone());
        }
    }

    /// Declares this shard finished emitting on `edge`; punctuations are
    /// sent so destinations can complete their progress tracking.
    pub fn done(&mut self, edge: EdgeId) {
        let msgs = self.core.lock().punctuate(edge);
        self.egress.extend(msgs);
    }

    /// Halts the shard: punctuates any open out-edges and releases the
    /// shard's slot in the run's completion tracking.
    pub fn halt(&mut self) {
        let msgs = self.core.lock().halt();
        self.egress.extend(msgs);
        self.shared.finalize_shard(self.core);
    }

    /// True once [`ShardCtx::halt`] (or [`Emitter::halt`]) has run.
    pub fn is_halted(&self) -> bool {
        self.core.lock().halted
    }

    /// Returns a cloneable emitter for asynchronous, low-latency sends
    /// from spawned tasks.
    pub fn emitter(&self) -> Emitter {
        Emitter {
            core: Arc::clone(self.core),
            shared: self.shared.clone(),
        }
    }
}

/// Low-latency asynchronous sender owned by a shard's spawned tasks.
///
/// Unlike [`ShardCtx`], sends are dispatched to the DCN immediately
/// rather than batched.
#[derive(Clone)]
pub struct Emitter {
    core: Arc<Lock<ShardCore>>,
    shared: RuntimeShared,
}

impl fmt::Debug for Emitter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.core.lock();
        f.debug_struct("Emitter")
            .field("node", &core.node)
            .field("shard", &core.shard)
            .finish()
    }
}

impl Emitter {
    /// This shard's index.
    pub fn shard(&self) -> u32 {
        self.core.lock().shard
    }

    /// The program run this shard belongs to.
    pub fn run(&self) -> RunId {
        self.core.lock().run
    }

    /// Sends a tuple immediately.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ShardCtx::send`].
    pub fn send(&self, edge: EdgeId, dst_shard: u32, tuple: Tuple) {
        let (src_host, msg, bytes) = {
            let mut core = self.core.lock();
            let host = core.record_send(edge, dst_shard);
            let bytes = tuple.bytes() + DATA_OVERHEAD_BYTES;
            (
                core.host,
                (
                    host,
                    PlaqueMsg::Data {
                        run: core.run,
                        edge,
                        src_shard: core.shard,
                        dst_shard,
                        tuple,
                    },
                    bytes,
                ),
                bytes,
            )
        };
        let _ = bytes;
        self.shared.route_from_async(src_host, vec![msg]);
    }

    /// Punctuates `edge` immediately.
    pub fn done(&self, edge: EdgeId) {
        let (src_host, msgs) = {
            let mut core = self.core.lock();
            (core.host, core.punctuate(edge))
        };
        self.shared.route_from_async(src_host, msgs);
    }

    /// Halts the shard (see [`ShardCtx::halt`]).
    pub fn halt(&self) {
        let (src_host, msgs) = {
            let mut core = self.core.lock();
            (core.host, core.halt())
        };
        self.shared.route_from_async(src_host, msgs);
        self.shared.finalize_shard(&self.core);
    }
}
