//! # pathways-plaque
//!
//! An open re-implementation of the coordination substrate the paper
//! calls PLAQUE (§4.3) — a production sharded dataflow system that is
//! closed source. The paper states the exact requirements Pathways
//! places on it, and this crate implements each one:
//!
//! 1. **Compact sharded representation** — one graph node per sharded
//!    computation, so `Arg → A → B → Result` is 4 nodes and 3 edges no
//!    matter how many shards `A` and `B` have ([`GraphBuilder`]).
//! 2. **Tagged data tuples** — each node emits tuples tagged with a
//!    destination shard ([`Tuple`], [`ShardCtx::send`]).
//! 3. **Sparse exchanges with progress tracking** — counted punctuations
//!    close edges even when a dynamically-chosen subset of shards
//!    communicates ([`ProgressTracker`]).
//! 4. **Low latency and batching** — buffered callback outputs are
//!    coalesced into one DCN message per destination host, while
//!    [`Emitter`] sends immediately for critical-path messages.
//!
//! ## Example: sharded map-reduce in 4 logical nodes
//!
//! ```
//! use std::sync::Arc;
//! use pathways_net::{ClusterSpec, Fabric, HostId, NetworkParams};
//! use pathways_plaque::{GraphBuilder, NullOperator, PlaqueRuntime};
//! use pathways_sim::Sim;
//!
//! let mut sim = Sim::new(0);
//! let fabric = Fabric::new(
//!     sim.handle(),
//!     Arc::new(ClusterSpec::config_b(4).build()),
//!     NetworkParams::tpu_cluster(),
//! );
//! let runtime = PlaqueRuntime::new(fabric);
//! let mut g = GraphBuilder::new("noop");
//! g.node("only", vec![HostId(0), HostId(1)], |_| Box::new(NullOperator));
//! let graph = g.build()?;
//! let run = runtime.launch(&graph, HostId(0));
//! let done = sim.spawn("client", async move { run.await_done().await });
//! sim.run_to_quiescence();
//! assert!(done.is_finished());
//! # Ok::<(), pathways_plaque::GraphError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod graph;
mod operator;
mod progress;
mod runtime;
mod tuple;

pub use graph::{EdgeId, EdgeMapping, Graph, GraphBuilder, GraphError, NodeId, OperatorFactory};
pub use operator::{Emitter, NullOperator, Operator, ShardCtx};
pub use progress::ProgressTracker;
pub use runtime::{PlaqueMsg, PlaqueRuntime, RunHandle, RunId, RuntimeShared};
pub use tuple::{Payload, Tuple};
