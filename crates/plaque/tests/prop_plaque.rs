//! Property-based tests of the sharded dataflow runtime: arbitrary
//! fan-out patterns complete, tuples are conserved, and sparse
//! destinations terminate.

use pathways_sim::Lock;
use std::sync::Arc;

use proptest::prelude::*;

use pathways_net::{ClusterSpec, Fabric, HostId, NetworkParams};
use pathways_plaque::{
    EdgeId, GraphBuilder, NullOperator, Operator, PlaqueRuntime, ShardCtx, Tuple,
};
use pathways_sim::Sim;

struct PatternSource {
    out: EdgeId,
    // (dst shard, how many tuples)
    plan: Vec<(u32, u8)>,
}

impl Operator for PatternSource {
    fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
        for (dst, n) in &self.plan {
            for _ in 0..*n {
                ctx.send(self.out, *dst, Tuple::new(1u64, 8));
            }
        }
        ctx.halt();
    }
}

struct CountingSink {
    got: Arc<Lock<u64>>,
}

impl Operator for CountingSink {
    fn on_tuple(&mut self, _c: &mut ShardCtx<'_>, _e: EdgeId, _s: u32, t: Tuple) {
        *self.got.lock() += t.expect::<u64>();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any sparse send plan from any number of source shards to any
    /// number of destination shards, the program terminates and every
    /// tuple is delivered exactly once.
    #[test]
    fn sparse_plans_conserve_tuples(
        src_shards in 1u32..6,
        dst_shards in 1u32..12,
        plan in proptest::collection::vec(
            proptest::collection::vec((0u32..12, 0u8..5), 0..6),
            1..6,
        ),
        hosts in 1u32..5,
    ) {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new(
            sim.handle(),
            Arc::new(ClusterSpec::config_b(hosts).build()),
            NetworkParams::tpu_cluster(),
        );
        let rt = PlaqueRuntime::new(fabric);
        let got = Arc::new(Lock::new(0u64));
        // Normalize: one plan entry per source shard, dsts in range.
        let plans: Vec<Vec<(u32, u8)>> = (0..src_shards)
            .map(|s| {
                plan.get(s as usize % plan.len())
                    .cloned()
                    .unwrap_or_default()
                    .into_iter()
                    .map(|(d, n)| (d % dst_shards, n))
                    .collect()
            })
            .collect();
        let expected: u64 = plans
            .iter()
            .flat_map(|p| p.iter().map(|(_, n)| *n as u64))
            .sum();

        let src_place: Vec<HostId> = (0..src_shards).map(|s| HostId(s % hosts)).collect();
        let dst_place: Vec<HostId> = (0..dst_shards).map(|s| HostId((s + 1) % hosts)).collect();
        let out = EdgeId(0);
        let mut g = GraphBuilder::new("prop");
        let plans2 = plans.clone();
        let src = g.node("src", src_place, move |shard| {
            Box::new(PatternSource {
                out,
                plan: plans2[shard as usize].clone(),
            })
        });
        let dst = {
            let got = Arc::clone(&got);
            g.node("dst", dst_place, move |_| {
                Box::new(CountingSink {
                    got: Arc::clone(&got),
                })
            })
        };
        prop_assert_eq!(g.edge(src, dst), out);
        let graph = g.build().unwrap();
        let run = rt.launch(&graph, HostId(0));
        let client = sim.spawn("client", async move { run.await_done().await });
        let outcome = sim.run();
        prop_assert!(outcome.is_quiescent(), "stuck: {:?}", outcome);
        prop_assert!(client.is_finished());
        prop_assert_eq!(*got.lock(), expected);
    }

    /// Graph size is O(nodes + edges) regardless of shard counts.
    #[test]
    fn representation_stays_compact(shards in 1u32..512) {
        let mut g = GraphBuilder::new("compact");
        let place: Vec<HostId> = (0..shards).map(|_| HostId(0)).collect();
        let a = g.node("a", place.clone(), |_| Box::new(NullOperator));
        let b = g.node("b", place, |_| Box::new(NullOperator));
        g.one_to_one_edge(a, b);
        let graph = g.build().unwrap();
        prop_assert_eq!(graph.num_nodes(), 2);
        prop_assert_eq!(graph.num_edges(), 1);
    }

    /// Concurrent runs of differently-sharded graphs never interfere:
    /// each run's sink receives exactly its own tuple count.
    #[test]
    fn concurrent_runs_are_isolated(
        counts in proptest::collection::vec(1u8..6, 2..5),
        hosts in 1u32..4,
    ) {
        let mut sim = Sim::new(0);
        let fabric = Fabric::new(
            sim.handle(),
            Arc::new(ClusterSpec::config_b(hosts).build()),
            NetworkParams::tpu_cluster(),
        );
        let rt = PlaqueRuntime::new(fabric);
        let mut sums = Vec::new();
        for (i, n) in counts.iter().enumerate() {
            let got = Arc::new(Lock::new(0u64));
            sums.push((Arc::clone(&got), *n as u64));
            let out = EdgeId(0);
            let n = *n;
            let mut g = GraphBuilder::new(format!("g{i}"));
            let src = g.node("src", vec![HostId(i as u32 % hosts)], move |_| {
                Box::new(PatternSource {
                    out,
                    plan: vec![(0, n)],
                })
            });
            let dst = {
                let got = Arc::clone(&got);
                g.node("dst", vec![HostId((i as u32 + 1) % hosts)], move |_| {
                    Box::new(CountingSink {
                        got: Arc::clone(&got),
                    })
                })
            };
            prop_assert_eq!(g.edge(src, dst), out);
            let graph = g.build().unwrap();
            let run = rt.launch(&graph, HostId(0));
            sim.spawn(format!("c{i}"), async move { run.await_done().await });
        }
        prop_assert!(sim.run().is_quiescent());
        for (got, want) in sums {
            prop_assert_eq!(*got.lock(), want);
        }
    }
}
