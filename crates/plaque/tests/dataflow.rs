//! Integration tests: sharded dataflow programs running over the
//! simulated DCN.

use pathways_sim::Lock;
use std::sync::Arc;

use pathways_net::{ClusterSpec, Fabric, HostId, NetworkParams};
use pathways_plaque::{
    EdgeId, GraphBuilder, NullOperator, Operator, PlaqueRuntime, ShardCtx, Tuple,
};
use pathways_sim::{Sim, SimDuration};

fn make_runtime(sim: &Sim, hosts: u32) -> PlaqueRuntime {
    let fabric = Fabric::new(
        sim.handle(),
        Arc::new(ClusterSpec::config_b(hosts).build()),
        NetworkParams::tpu_cluster(),
    );
    PlaqueRuntime::new(fabric)
}

/// Source operator: emits `count` tuples round-robin over destination
/// shards, then halts.
struct Source {
    edge: EdgeId,
    count: u32,
}

impl Operator for Source {
    fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
        let dsts = ctx.dst_shards(self.edge);
        for i in 0..self.count {
            ctx.send(self.edge, i % dsts, Tuple::new(i, 8));
        }
        ctx.halt();
    }
}

/// Sink operator: records received values into a shared vec.
struct Sink {
    got: Arc<Lock<Vec<u32>>>,
}

impl Operator for Sink {
    fn on_tuple(&mut self, _ctx: &mut ShardCtx<'_>, _edge: EdgeId, _src: u32, tuple: Tuple) {
        self.got.lock().push(*tuple.expect::<u32>());
    }
}

#[test]
fn tuples_flow_from_source_to_sharded_sink() {
    let mut sim = Sim::new(0);
    let rt = make_runtime(&sim, 4);
    let got = Arc::new(Lock::new(Vec::new()));
    let mut g = GraphBuilder::new("flow");
    let src = g.node("src", vec![HostId(0)], |_| Box::new(NullOperator));
    let dst = g.node("dst", vec![HostId(1), HostId(2)], {
        let got = Arc::clone(&got);
        move |_| {
            Box::new(Sink {
                got: Arc::clone(&got),
            })
        }
    });
    let e = g.edge(src, dst);
    // Rebuild with a real source now that we know the edge id.
    let mut g2 = GraphBuilder::new("flow");
    let _src = g2.node("src", vec![HostId(0)], move |_| {
        Box::new(Source { edge: e, count: 10 })
    });
    let _dst = g2.node("dst", vec![HostId(1), HostId(2)], {
        let got = Arc::clone(&got);
        move |_| {
            Box::new(Sink {
                got: Arc::clone(&got),
            })
        }
    });
    let e2 = g2.edge(_src, _dst);
    assert_eq!(e, e2);
    let graph = g2.build().unwrap();
    let run = rt.launch(&graph, HostId(0));
    sim.spawn("client", async move { run.await_done().await });
    sim.run_to_quiescence();
    let mut vals = got.lock().clone();
    vals.sort_unstable();
    assert_eq!(vals, (0..10).collect::<Vec<u32>>());
}

/// A chain Arg -> A -> B -> Result where A and B have N shards each; each
/// shard of A forwards to the same shard of B. Checks both values and the
/// compact-representation claim.
struct Forward {
    out: EdgeId,
}

impl Operator for Forward {
    fn on_tuple(&mut self, ctx: &mut ShardCtx<'_>, _edge: EdgeId, _src: u32, tuple: Tuple) {
        let v = *tuple.expect::<u32>();
        let dst = ctx.shard() % ctx.dst_shards(self.out);
        ctx.send(self.out, dst, Tuple::new(v + 1, 8));
    }
}

struct Scatter {
    out: EdgeId,
}

impl Operator for Scatter {
    fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
        for d in 0..ctx.dst_shards(self.out) {
            ctx.send(self.out, d, Tuple::new(d * 100, 8));
        }
        ctx.halt();
    }
}

struct Gather {
    got: Arc<Lock<Vec<u32>>>,
}

impl Operator for Gather {
    fn on_tuple(&mut self, _ctx: &mut ShardCtx<'_>, _e: EdgeId, _s: u32, tuple: Tuple) {
        self.got.lock().push(*tuple.expect::<u32>());
    }
}

#[test]
fn chained_sharded_computation_produces_n_parallel_flows() {
    const N: u32 = 8;
    let mut sim = Sim::new(0);
    let rt = make_runtime(&sim, 16);
    let got = Arc::new(Lock::new(Vec::new()));

    let hosts_a: Vec<HostId> = (0..N).map(HostId).collect();
    let hosts_b: Vec<HostId> = (N..2 * N).map(HostId).collect();

    let mut g = GraphBuilder::new("chain");
    let arg = g.node("Arg", vec![HostId(0)], |_| Box::new(NullOperator));
    let a = g.node("A", hosts_a, |_| Box::new(NullOperator));
    let b = g.node("B", hosts_b, |_| Box::new(NullOperator));
    let result = g.node("Result", vec![HostId(0)], |_| Box::new(NullOperator));
    let e_arg = g.edge(arg, a);
    let e_ab = g.edge(a, b);
    let e_res = g.edge(b, result);

    // Now rebuild with the real operators (edge ids are deterministic).
    let mut g = GraphBuilder::new("chain");
    let arg = g.node("Arg", vec![HostId(0)], move |_| {
        Box::new(Scatter { out: e_arg })
    });
    let a = g.node("A", (0..N).map(HostId).collect::<Vec<_>>(), move |_| {
        Box::new(Forward { out: e_ab })
    });
    let b = g.node("B", (N..2 * N).map(HostId).collect::<Vec<_>>(), move |_| {
        Box::new(Forward { out: e_res })
    });
    let result = g.node("Result", vec![HostId(0)], {
        let got = Arc::clone(&got);
        move |_| {
            Box::new(Gather {
                got: Arc::clone(&got),
            })
        }
    });
    assert_eq!(g.edge(arg, a), e_arg);
    assert_eq!(g.edge(a, b), e_ab);
    assert_eq!(g.edge(b, result), e_res);
    let graph = g.build().unwrap();

    // Compact representation: 4 nodes, 3 edges, independent of N.
    assert_eq!(graph.num_nodes(), 4);
    assert_eq!(graph.num_edges(), 3);

    let run = rt.launch(&graph, HostId(0));
    sim.spawn("client", async move { run.await_done().await });
    sim.run_to_quiescence();

    let mut vals = got.lock().clone();
    vals.sort_unstable();
    let want: Vec<u32> = (0..N).map(|d| d * 100 + 2).collect();
    assert_eq!(vals, want);
}

/// Sparse exchange: the source sends to a single dynamically chosen shard
/// out of many; all other shards still terminate via progress tracking.
#[test]
fn sparse_exchange_completes_all_shards() {
    const N: u32 = 16;
    struct SparseSource {
        out: EdgeId,
    }
    impl Operator for SparseSource {
        fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
            // Only shard 13 gets data.
            ctx.send(self.out, 13, Tuple::new(99u32, 8));
            ctx.halt();
        }
    }
    let mut sim = Sim::new(0);
    let rt = make_runtime(&sim, 17);
    let got = Arc::new(Lock::new(Vec::new()));
    let mut g = GraphBuilder::new("sparse");
    let src = g.node("src", vec![HostId(16)], |_| Box::new(NullOperator));
    let dst = g.node("dst", (0..N).map(HostId).collect::<Vec<_>>(), |_| {
        Box::new(NullOperator)
    });
    let e = g.edge(src, dst);
    let mut g = GraphBuilder::new("sparse");
    let src = g.node("src", vec![HostId(16)], move |_| {
        Box::new(SparseSource { out: e })
    });
    let dst = g.node("dst", (0..N).map(HostId).collect::<Vec<_>>(), {
        let got = Arc::clone(&got);
        move |_| {
            Box::new(Gather {
                got: Arc::clone(&got),
            })
        }
    });
    assert_eq!(g.edge(src, dst), e);
    let graph = g.build().unwrap();
    let run = rt.launch(&graph, HostId(16));
    let client = sim.spawn("client", async move { run.await_done().await });
    sim.run_to_quiescence();
    assert!(client.is_finished());
    assert_eq!(*got.lock(), vec![99]);
}

/// Two launches of the same graph run concurrently without interference
/// (the runtime is multi-tenant).
#[test]
fn concurrent_runs_are_isolated() {
    let mut sim = Sim::new(0);
    let rt = make_runtime(&sim, 4);
    let got = Arc::new(Lock::new(Vec::new()));
    let mut g = GraphBuilder::new("t");
    let src = g.node("src", vec![HostId(0)], |_| Box::new(NullOperator));
    let dst = g.node("dst", vec![HostId(1)], |_| Box::new(NullOperator));
    let e = g.edge(src, dst);
    let mut g = GraphBuilder::new("t");
    let src = g.node("src", vec![HostId(0)], move |_| {
        Box::new(Source { edge: e, count: 5 })
    });
    let dst = g.node("dst", vec![HostId(1)], {
        let got = Arc::clone(&got);
        move |_| {
            Box::new(Gather {
                got: Arc::clone(&got),
            })
        }
    });
    assert_eq!(g.edge(src, dst), e);
    let graph = g.build().unwrap();

    let r1 = rt.launch(&graph, HostId(0));
    let r2 = rt.launch(&graph, HostId(0));
    assert_ne!(r1.id(), r2.id());
    sim.spawn("c1", async move { r1.await_done().await });
    sim.spawn("c2", async move { r2.await_done().await });
    sim.run_to_quiescence();
    assert_eq!(rt.live_runs(), 0);
    let mut vals = got.lock().clone();
    vals.sort_unstable();
    assert_eq!(vals, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
}

/// Asynchronous emission through an Emitter: the operator spawns a task
/// that emits after simulated device work, then halts the shard.
#[test]
fn async_emitter_sends_after_spawned_work() {
    struct AsyncSource {
        out: EdgeId,
    }
    impl Operator for AsyncSource {
        fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
            let emitter = ctx.emitter();
            let h = ctx.handle().clone();
            let out = self.out;
            ctx.handle().spawn("async-emit", async move {
                h.sleep(SimDuration::from_millis(1)).await;
                emitter.send(out, 0, Tuple::new(7u32, 8));
                emitter.halt();
            });
            // Note: no ctx.halt() here — the spawned task halts.
        }
    }
    let mut sim = Sim::new(0);
    let rt = make_runtime(&sim, 4);
    let got = Arc::new(Lock::new(Vec::new()));
    let mut g = GraphBuilder::new("a");
    let src = g.node("src", vec![HostId(0)], |_| Box::new(NullOperator));
    let dst = g.node("dst", vec![HostId(1)], |_| Box::new(NullOperator));
    let e = g.edge(src, dst);
    let mut g = GraphBuilder::new("a");
    let src = g.node("src", vec![HostId(0)], move |_| {
        Box::new(AsyncSource { out: e })
    });
    let dst = g.node("dst", vec![HostId(1)], {
        let got = Arc::clone(&got);
        move |_| {
            Box::new(Gather {
                got: Arc::clone(&got),
            })
        }
    });
    assert_eq!(g.edge(src, dst), e);
    let graph = g.build().unwrap();
    let run = rt.launch(&graph, HostId(0));
    sim.spawn("client", async move { run.await_done().await });
    let end = sim.run_to_quiescence();
    assert_eq!(*got.lock(), vec![7]);
    // The emission waited for the 1ms of simulated work.
    assert!(end >= pathways_sim::SimTime::ZERO + SimDuration::from_millis(1));
}

/// Messages to one destination host within a round are batched: the NIC
/// is occupied once, not once per tuple.
#[test]
fn same_host_messages_batch_into_one_dcn_message() {
    struct FanSource {
        out: EdgeId,
        n: u32,
    }
    impl Operator for FanSource {
        fn on_all_inputs_complete(&mut self, ctx: &mut ShardCtx<'_>) {
            for i in 0..self.n {
                ctx.send(self.out, i, Tuple::new(i, 0));
            }
            ctx.halt();
        }
    }
    // All 32 destination shards live on host 1: with batching the whole
    // fan-out costs ~1 NIC occupancy; unbatched it would cost 32.
    let mut sim = Sim::new(0);
    let rt = make_runtime(&sim, 2);
    let mut g = GraphBuilder::new("fan");
    let src = g.node("src", vec![HostId(0)], |_| Box::new(NullOperator));
    let dst = g.node("dst", vec![HostId(1); 32], |_| Box::new(NullOperator));
    let e = g.edge(src, dst);
    let mut g = GraphBuilder::new("fan");
    let src = g.node("src", vec![HostId(0)], move |_| {
        Box::new(FanSource { out: e, n: 32 })
    });
    let _dst = g.node("dst", vec![HostId(1); 32], |_| Box::new(NullOperator));
    assert_eq!(g.edge(src, _dst), e);
    let graph = g.build().unwrap();
    let run = rt.launch(&graph, HostId(0));
    sim.spawn("client", async move { run.await_done().await });
    let end = sim.run_to_quiescence();
    let p = NetworkParams::tpu_cluster();
    // Unbatched lower bound: 32 per-message overheads on the NIC.
    let unbatched_floor = p.dcn_send_overhead * 32;
    assert!(
        end.as_nanos() < unbatched_floor.as_nanos() + p.dcn_latency.as_nanos(),
        "fan-out did not batch: took {end}"
    );
}
