//! The Transformer configurations evaluated in §5.3.

use serde::{Deserialize, Serialize};

/// Architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arch {
    /// Encoder-decoder (the T5 text-to-text family, Table 1).
    EncoderDecoder,
    /// Decoder-only language model (Table 2, Figures 10 and 12).
    DecoderOnly,
}

/// One Transformer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Display name.
    pub name: String,
    /// Architecture family.
    pub arch: Arch,
    /// Total Transformer layers (encoder + decoder for T5).
    pub layers: u32,
    /// Model (embedding) dimension.
    pub d_model: u32,
    /// Feed-forward hidden dimension.
    pub d_ff: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Training sequence length.
    pub seq_len: u32,
    /// Exact parameter count when known (the paper reports rounded
    /// ones); otherwise derived from the dimensions.
    pub params_override: Option<u64>,
}

impl TransformerConfig {
    /// Total parameters.
    pub fn params(&self) -> u64 {
        if let Some(p) = self.params_override {
            return p;
        }
        // Per layer: attention (4 d^2) + feed-forward (2 d d_ff), plus
        // embeddings (vocab x d).
        let d = self.d_model as u64;
        let ff = self.d_ff as u64;
        let per_layer = 4 * d * d + 2 * d * ff;
        per_layer * self.layers as u64 + self.vocab as u64 * d
    }

    /// Training FLOPs per token (forward + backward), the standard
    /// `6 x params` estimate.
    pub fn train_flops_per_token(&self) -> f64 {
        6.0 * self.params() as f64
    }

    /// Bytes of one parameter-sized tensor in bf16.
    pub fn param_bytes_bf16(&self) -> u64 {
        2 * self.params()
    }

    /// Activation bytes per token at a layer boundary (bf16).
    pub fn activation_bytes_per_token(&self) -> u64 {
        2 * self.d_model as u64
    }

    // --- Table 1: T5 configurations (Raffel et al., 2019), parameter
    // counts as the paper reports them. ---

    /// T5-Base (270M as reported in Table 1).
    pub fn t5_base() -> Self {
        TransformerConfig {
            name: "T5-Base".into(),
            arch: Arch::EncoderDecoder,
            layers: 24,
            d_model: 768,
            d_ff: 3072,
            vocab: 32128,
            seq_len: 512,
            params_override: Some(270_000_000),
        }
    }

    /// T5-Large (770M).
    pub fn t5_large() -> Self {
        TransformerConfig {
            name: "T5-Large".into(),
            arch: Arch::EncoderDecoder,
            layers: 48,
            d_model: 1024,
            d_ff: 4096,
            vocab: 32128,
            seq_len: 512,
            params_override: Some(770_000_000),
        }
    }

    /// T5-3B.
    pub fn t5_3b() -> Self {
        TransformerConfig {
            name: "T5-3B".into(),
            arch: Arch::EncoderDecoder,
            layers: 48,
            d_model: 1024,
            d_ff: 16384,
            vocab: 32128,
            seq_len: 512,
            params_override: Some(3_000_000_000),
        }
    }

    /// T5-11B.
    pub fn t5_11b() -> Self {
        TransformerConfig {
            name: "T5-11B".into(),
            arch: Arch::EncoderDecoder,
            layers: 48,
            d_model: 1024,
            d_ff: 65536,
            vocab: 32128,
            seq_len: 512,
            params_override: Some(11_000_000_000),
        }
    }

    // --- §5.3 decoder-only models. ---

    /// The 3B decoder LM of Table 2: "62 Transformer layers with a model
    /// dimension of 2048 and a hidden dimension of 8192".
    pub fn decoder_3b() -> Self {
        TransformerConfig {
            name: "3B-LM".into(),
            arch: Arch::DecoderOnly,
            layers: 62,
            d_model: 2048,
            d_ff: 8192,
            vocab: 32000,
            seq_len: 1024,
            params_override: None, // dims give ~3.1B, matching the paper
        }
    }

    /// The 64B decoder LM (§5.3 / Figure 12).
    pub fn decoder_64b() -> Self {
        TransformerConfig {
            name: "64B-LM".into(),
            arch: Arch::DecoderOnly,
            layers: 64,
            d_model: 8192,
            d_ff: 32768,
            vocab: 32000,
            seq_len: 1024,
            params_override: Some(64_000_000_000),
        }
    }

    /// The 136B decoder LM (§5.3 / Figure 12).
    pub fn decoder_136b() -> Self {
        TransformerConfig {
            name: "136B-LM".into(),
            arch: Arch::DecoderOnly,
            layers: 88,
            d_model: 10240,
            d_ff: 40960,
            vocab: 32000,
            seq_len: 1024,
            params_override: Some(136_000_000_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_param_counts() {
        assert_eq!(TransformerConfig::t5_base().params(), 270_000_000);
        assert_eq!(TransformerConfig::t5_11b().params(), 11_000_000_000);
        // The 3B decoder derives its count from its dimensions; the
        // paper says "3 billion parameters in total".
        let p = TransformerConfig::decoder_3b().params() as f64;
        assert!((2.5e9..3.5e9).contains(&p), "got {p}");
    }

    #[test]
    fn flops_scale_with_params() {
        let base = TransformerConfig::t5_base();
        let big = TransformerConfig::t5_11b();
        let ratio = big.train_flops_per_token() / base.train_flops_per_token();
        assert!((ratio - 11e9 / 270e6).abs() < 1.0);
    }

    #[test]
    fn activation_bytes_follow_d_model() {
        let m = TransformerConfig::decoder_3b();
        assert_eq!(m.activation_bytes_per_token(), 4096);
    }
}
