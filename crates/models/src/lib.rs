//! # pathways-models
//!
//! The §5.3 evaluation workloads of the Pathways paper: the T5
//! encoder-decoder family (Table 1), the 3B/64B/136B decoder-only LMs
//! (Table 2, Figures 10 and 12), an analytic TPU cost model, and
//! builders that lower SPMD, GPipe-pipelined and two-island
//! data-parallel training steps onto Pathways programs.
//!
//! ## Example
//!
//! ```
//! use pathways_models::{spmd_program, TrainSetup, TransformerConfig};
//! use pathways_core::{PathwaysConfig, PathwaysRuntime, SliceRequest};
//! use pathways_net::{ClusterSpec, HostId, NetworkParams};
//! use pathways_sim::Sim;
//!
//! let mut sim = Sim::new(0);
//! let rt = PathwaysRuntime::new(
//!     &sim,
//!     ClusterSpec::config_b(2),
//!     NetworkParams::tpu_cluster(),
//!     PathwaysConfig::default(),
//! );
//! let client = rt.client(HostId(0));
//! let slice = client.virtual_slice(SliceRequest::devices(16))?;
//! let setup = TrainSetup::new(TransformerConfig::t5_base(), 1 << 20);
//! let program = spmd_program(&client, &slice, &setup);
//! let prepared = client.prepare(&program);
//! sim.spawn("train", async move {
//!     client.run(&prepared).await;
//! });
//! sim.run_to_quiescence();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod calibration;
mod transformer;
mod workloads;

pub use calibration::Calibration;
pub use transformer::{Arch, TransformerConfig};
pub use workloads::{
    gpipe_program, measure_tokens_per_sec, measure_tokens_per_sec_chained, sink_ids, spmd_chained,
    spmd_program, two_island_chained, two_island_data_parallel_program, StepChain, TrainSetup,
};
