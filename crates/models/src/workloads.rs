//! Builders that lower training workloads onto Pathways programs.
//!
//! Three program shapes cover every §5.3 experiment:
//!
//! * [`spmd_program`] — one sharded computation over all devices of a
//!   slice (Tables 1 and 2's "Model-parallel (SPMD)" rows);
//! * [`gpipe_program`] — a GPipe schedule with `S` stages and `M`
//!   micro-batches, stage `s` on its own slice (Table 2's pipelining
//!   rows, Figures 7 and 10);
//! * [`two_island_data_parallel_program`] — gradient exchange between
//!   islands over the DCN (§5.3's 64B/136B runs, Figure 12).

use pathways_core::{
    Client, CompId, FnSpec, InputSpec, ObjectRef, PreparedProgram, Program, Run, VirtualSlice,
};
use pathways_sim::SimDuration;

use crate::calibration::Calibration;
use crate::transformer::TransformerConfig;

/// A training workload: model + calibration + global batch.
#[derive(Debug, Clone)]
pub struct TrainSetup {
    /// The model.
    pub model: TransformerConfig,
    /// Hardware calibration.
    pub calib: Calibration,
    /// Tokens per training step (global batch x sequence length).
    pub global_batch_tokens: u64,
}

impl TrainSetup {
    /// Creates a setup with the default calibration.
    pub fn new(model: TransformerConfig, global_batch_tokens: u64) -> Self {
        TrainSetup {
            model,
            calib: Calibration::default(),
            global_batch_tokens,
        }
    }
}

/// Builds a single-computation SPMD training-step program on `slice`.
///
/// The computation's collective models the intra-step parameter/gradient
/// exchange; following GShard (§5.3 footnote), its size is proportional
/// to the per-device parameter shard, not to the batch.
pub fn spmd_program(client: &Client, slice: &VirtualSlice, setup: &TrainSetup) -> Program {
    let cores = slice.len() as u32;
    let compute = setup
        .calib
        .step_compute_time(&setup.model, setup.global_batch_tokens, cores);
    let comm_bytes = setup.model.param_bytes_bf16() / cores as u64;
    // Non-overlapped SPMD collective time (see Calibration docs).
    let comm_time = compute.mul_f64(setup.calib.spmd_comm_fraction);
    let mut b = client.trace(format!("spmd-{}", setup.model.name));
    b.computation(
        FnSpec::compute_only(format!("{}-step", setup.model.name), compute)
            .with_allreduce(comm_bytes)
            .with_collective_time(comm_time)
            .with_output_bytes(64),
        slice,
    );
    b.build().expect("single-computation program is valid")
}

/// Builds a GPipe training-step program: `stages.len()` pipeline stages,
/// `microbatches` micro-batches, forward then backward per micro-batch,
/// and one apply-gradients computation per stage.
///
/// # Panics
///
/// Panics if `stages` is empty or `microbatches` is zero.
pub fn gpipe_program(
    client: &Client,
    stages: &[VirtualSlice],
    microbatches: u32,
    setup: &TrainSetup,
) -> Program {
    assert!(!stages.is_empty(), "pipeline needs at least one stage");
    assert!(microbatches > 0, "pipeline needs at least one micro-batch");
    let s_count = stages.len() as u32;
    let m_count = microbatches;
    let ub_tokens = setup.global_batch_tokens / m_count as u64;

    // Forward is 1/3 of training FLOPs, backward 2/3; each stage holds
    // 1/S of the layers.
    let step_all = setup
        .calib
        .step_compute_time(&setup.model, ub_tokens, stages[0].len() as u32);
    let stage_total = SimDuration::from_nanos(step_all.as_nanos() / s_count as u64);
    let fwd_t = SimDuration::from_nanos(stage_total.as_nanos() / 3);
    let bwd_t = stage_total - fwd_t;
    // Activations are sharded across the stage's devices: each shard
    // holds and forwards its slice of the micro-batch boundary tensor.
    let act_bytes = ub_tokens * setup.model.activation_bytes_per_token() / stages[0].len() as u64;

    let mut b = client.trace(format!(
        "gpipe-{}-S{}-M{}",
        setup.model.name, s_count, m_count
    ));
    let mut fwd = vec![Vec::with_capacity(m_count as usize); s_count as usize];
    let mut bwd = vec![Vec::with_capacity(m_count as usize); s_count as usize];
    for s in 0..s_count as usize {
        for m in 0..m_count {
            fwd[s].push(b.computation(
                FnSpec::compute_only(format!("fwd{s}m{m}"), fwd_t).with_output_bytes(act_bytes),
                &stages[s],
            ));
        }
    }
    for s in (0..s_count as usize).rev() {
        for m in 0..m_count {
            bwd[s].push(b.computation(
                FnSpec::compute_only(format!("bwd{s}m{m}"), bwd_t).with_output_bytes(act_bytes),
                &stages[s],
            ));
        }
    }
    // Dataflow: activations forward, gradients backward.
    for s in 0..s_count as usize {
        for m in 0..m_count as usize {
            if s + 1 < s_count as usize {
                b.reshard_edge(fwd[s][m], fwd[s + 1][m], act_bytes);
            } else {
                b.reshard_edge(fwd[s][m], bwd[s][m], act_bytes);
            }
            if s > 0 {
                b.reshard_edge(bwd[s][m], bwd[s - 1][m], act_bytes);
            }
        }
    }
    // Apply-gradients per stage once all its micro-batches are done.
    let apply_t = SimDuration::from_nanos(stage_total.as_nanos() / 20);
    for s in 0..s_count as usize {
        let apply = b.computation(
            FnSpec::compute_only(format!("apply{s}"), apply_t).with_output_bytes(64),
            &stages[s],
        );
        for &bwd_sm in bwd[s].iter().take(m_count as usize) {
            b.edge(bwd_sm, apply, 64);
        }
    }
    b.build().expect("gpipe program is a DAG")
}

/// Builds a two-island data-parallel step (§5.3): each island computes
/// gradients over half the batch, exchanges them over the DCN, and
/// applies.
pub fn two_island_data_parallel_program(
    client: &Client,
    islands: &[VirtualSlice; 2],
    setup: &TrainSetup,
) -> Program {
    let cores = islands[0].len() as u32;
    assert_eq!(
        islands[0].len(),
        islands[1].len(),
        "islands must be symmetric"
    );
    // Each island processes half the global batch.
    let half_tokens = setup.global_batch_tokens / 2;
    let compute = setup
        .calib
        .step_compute_time(&setup.model, half_tokens, cores);
    let comm_time = compute.mul_f64(setup.calib.spmd_comm_fraction);
    let intra_bytes = setup.model.param_bytes_bf16() / cores as u64;
    // Cross-island exchange: the fast ICI within-island reduction
    // happened in the grad computation; each island then ships its
    // reduced gradients to the other over DCN.
    let exchange_total = setup.calib.grad_exchange_bytes(&setup.model);
    let exchange_per_shard = exchange_total / islands[0].len() as u64;

    let mut b = client.trace(format!("2island-{}", setup.model.name));
    let mut grads = Vec::new();
    let mut applies = Vec::new();
    for island in islands {
        grads.push(
            b.computation(
                FnSpec::compute_only(format!("{}-grad", setup.model.name), compute)
                    .with_allreduce(intra_bytes)
                    .with_collective_time(comm_time)
                    .with_output_bytes(exchange_per_shard),
                island,
            ),
        );
    }
    let apply_t = SimDuration::from_nanos(compute.as_nanos() / 20);
    for island in islands {
        applies.push(b.computation(
            FnSpec::compute_only("apply", apply_t).with_output_bytes(64),
            island,
        ));
    }
    // Each apply waits for the local gradients (free) and the remote
    // island's gradients (DCN transfer).
    b.edge(grads[0], applies[0], 0);
    b.edge(grads[1], applies[1], 0);
    b.edge(grads[0], applies[1], exchange_per_shard);
    b.edge(grads[1], applies[0], exchange_per_shard);
    b.build().expect("data-parallel program is a DAG")
}

/// Sink computation ids of a program (convenience for result checks).
pub fn sink_ids(program: &Program) -> Vec<CompId> {
    program.sinks()
}

/// A training loop expressed as chained programs: an `init` program
/// mints the weight objects once, then every `step` consumes the
/// previous step's weights through external inputs and produces the
/// next — the whole loop is dispatched through `ObjectRef` futures
/// without awaiting intermediate steps.
#[derive(Debug, Clone)]
pub struct StepChain {
    /// Produces the initial weight object(s).
    pub init: Program,
    /// Sinks of `init`, aligned with `step_inputs`.
    pub init_outputs: Vec<CompId>,
    /// The repeated training step.
    pub step: Program,
    /// External inputs of `step`, bound to the previous outputs.
    pub step_inputs: Vec<CompId>,
    /// Sinks of `step`, aligned with `step_inputs`.
    pub step_outputs: Vec<CompId>,
}

/// Builds the chained-futures form of [`spmd_program`]: the step takes
/// the previous step's weights as an external input and emits the
/// updated weights as its output object, so successive steps chain
/// through the object store instead of through the client.
pub fn spmd_chained(client: &Client, slice: &VirtualSlice, setup: &TrainSetup) -> StepChain {
    let cores = slice.len() as u32;
    let compute = setup
        .calib
        .step_compute_time(&setup.model, setup.global_batch_tokens, cores);
    let comm_bytes = setup.model.param_bytes_bf16() / cores as u64;
    let comm_time = compute.mul_f64(setup.calib.spmd_comm_fraction);
    let weight_shard = setup.model.param_bytes_bf16() / cores as u64;

    let mut b = client.trace(format!("spmd-init-{}", setup.model.name));
    let w0 = b.computation(
        FnSpec::compute_only("init-weights", SimDuration::from_micros(1))
            .with_output_bytes(weight_shard),
        slice,
    );
    let init = b.build().expect("init program is valid");

    let mut b = client.trace(format!("spmd-chained-{}", setup.model.name));
    let w_in = b.input(InputSpec::new("weights", cores));
    let step_k = b.computation(
        FnSpec::compute_only(format!("{}-step", setup.model.name), compute)
            .with_allreduce(comm_bytes)
            .with_collective_time(comm_time)
            .with_output_bytes(weight_shard),
        slice,
    );
    // Weights stay device-resident: the handoff is shard-local.
    b.edge(w_in, step_k, 0);
    let step = b.build().expect("chained step is valid");
    StepChain {
        init,
        init_outputs: vec![w0],
        step,
        step_inputs: vec![w_in],
        step_outputs: vec![step_k],
    }
}

/// Builds the chained-futures form of
/// [`two_island_data_parallel_program`]: each island's grad computation
/// consumes that island's previous weights (external input), gradients
/// cross the DCN, and the two applies emit the next weights.
pub fn two_island_chained(
    client: &Client,
    islands: &[VirtualSlice; 2],
    setup: &TrainSetup,
) -> StepChain {
    let cores = islands[0].len() as u32;
    assert_eq!(
        islands[0].len(),
        islands[1].len(),
        "islands must be symmetric"
    );
    let half_tokens = setup.global_batch_tokens / 2;
    let compute = setup
        .calib
        .step_compute_time(&setup.model, half_tokens, cores);
    let comm_time = compute.mul_f64(setup.calib.spmd_comm_fraction);
    let intra_bytes = setup.model.param_bytes_bf16() / cores as u64;
    let exchange_total = setup.calib.grad_exchange_bytes(&setup.model);
    let exchange_per_shard = exchange_total / islands[0].len() as u64;
    let weight_shard = setup.model.param_bytes_bf16() / (2 * cores as u64);

    let mut b = client.trace(format!("2island-init-{}", setup.model.name));
    let init_outputs: Vec<CompId> = islands
        .iter()
        .map(|island| {
            b.computation(
                FnSpec::compute_only("init-weights", SimDuration::from_micros(1))
                    .with_output_bytes(weight_shard),
                island,
            )
        })
        .collect();
    let init = b.build().expect("init program is valid");

    let mut b = client.trace(format!("2island-chained-{}", setup.model.name));
    let step_inputs: Vec<CompId> = (0..2)
        .map(|i| b.input(InputSpec::new(format!("weights{i}"), cores)))
        .collect();
    let mut grads = Vec::new();
    for (i, island) in islands.iter().enumerate() {
        let grad = b.computation(
            FnSpec::compute_only(format!("{}-grad", setup.model.name), compute)
                .with_allreduce(intra_bytes)
                .with_collective_time(comm_time)
                .with_output_bytes(exchange_per_shard),
            island,
        );
        b.edge(step_inputs[i], grad, 0);
        grads.push(grad);
    }
    let apply_t = SimDuration::from_nanos(compute.as_nanos() / 20);
    let step_outputs: Vec<CompId> = islands
        .iter()
        .map(|island| {
            b.computation(
                FnSpec::compute_only("apply", apply_t).with_output_bytes(weight_shard),
                island,
            )
        })
        .collect();
    b.edge(grads[0], step_outputs[0], 0);
    b.edge(grads[1], step_outputs[1], 0);
    b.edge(grads[0], step_outputs[1], exchange_per_shard);
    b.edge(grads[1], step_outputs[0], exchange_per_shard);
    let step = b.build().expect("chained data-parallel step is a DAG");
    StepChain {
        init,
        init_outputs,
        step,
        step_inputs,
        step_outputs,
    }
}

/// Runs `steps` training steps (plus one warm-up) of a prepared program
/// and returns tokens/second of steady-state virtual time.
pub async fn measure_tokens_per_sec(
    client: &Client,
    prepared: &pathways_core::PreparedProgram,
    tokens_per_step: u64,
    steps: u32,
) -> f64 {
    // Warm-up step (compilation, buffer pools).
    client.run(prepared).await;
    let handle = client.handle().clone();
    let start = handle.now();
    for _ in 0..steps {
        client.run(prepared).await;
    }
    let elapsed = handle.now().duration_since(start);
    (tokens_per_step * steps as u64) as f64 / elapsed.as_secs_f64()
}

/// Runs `steps` chained training steps (after an awaited init/warm-up)
/// with **no intermediate awaits**: every step is submitted with the
/// previous step's output futures bound to its inputs, so the
/// coordinator dispatches the whole loop while early steps are still on
/// the devices. Returns tokens/second of virtual time.
///
/// `init` and `step` must be preparations of [`StepChain::init`] and
/// [`StepChain::step`].
pub async fn measure_tokens_per_sec_chained(
    client: &Client,
    init: &PreparedProgram,
    step: &PreparedProgram,
    chain: &StepChain,
    tokens_per_step: u64,
    steps: u32,
) -> f64 {
    // Init doubles as the warm-up barrier.
    let init_result = client.run(init).await;
    let mut prev: Vec<ObjectRef> = chain
        .init_outputs
        .iter()
        .map(|c| init_result.object_ref(*c).expect("init sink"))
        .collect();
    let handle = client.handle().clone();
    let start = handle.now();
    let mut runs: Vec<Run> = Vec::with_capacity(steps as usize);
    for _ in 0..steps {
        let bindings: Vec<(CompId, ObjectRef)> = chain
            .step_inputs
            .iter()
            .copied()
            .zip(prev.drain(..))
            .collect();
        let run = client
            .submit_with(step, &bindings)
            .await
            .expect("chain bindings match the step's inputs");
        prev = chain
            .step_outputs
            .iter()
            .map(|c| run.object_ref(*c).expect("step sink"))
            .collect();
        runs.push(run);
    }
    drop(prev);
    drop(init_result);
    for run in runs {
        run.finish().await;
    }
    let elapsed = handle.now().duration_since(start);
    (tokens_per_step * steps as u64) as f64 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathways_core::{PathwaysConfig, PathwaysRuntime, SliceRequest};
    use pathways_net::{ClusterSpec, HostId, IslandId, NetworkParams};
    use pathways_sim::Sim;

    fn small_setup() -> TrainSetup {
        let mut s = TrainSetup::new(TransformerConfig::decoder_3b(), 64 * 1024);
        // Keep simulated steps short for tests.
        s.calib.mfu = 0.5;
        s
    }

    #[test]
    fn spmd_program_has_one_computation() {
        let mut sim = Sim::new(0);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(2),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let slice = client.virtual_slice(SliceRequest::devices(16)).unwrap();
        let p = spmd_program(&client, &slice, &small_setup());
        assert_eq!(p.computations().len(), 1);
        let prepared = client.prepare(&p);
        let job = sim.spawn(
            "c",
            async move { client.run(&prepared).await.objects().len() },
        );
        sim.run_to_quiescence();
        assert_eq!(job.try_take().unwrap(), 1);
    }

    #[test]
    fn gpipe_program_shape() {
        let mut sim = Sim::new(0);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(4),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let stages: Vec<_> = (0..4)
            .map(|_| client.virtual_slice(SliceRequest::devices(8)).unwrap())
            .collect();
        let p = gpipe_program(&client, &stages, 4, &small_setup());
        // 4 stages x 4 ubatches x (fwd + bwd) + 4 applies.
        assert_eq!(p.computations().len(), 4 * 4 * 2 + 4);
        // It is a DAG with a valid topological order.
        assert_eq!(p.topo_order().len(), p.computations().len());
        let prepared = client.prepare(&p);
        let job = sim.spawn(
            "c",
            async move { client.run(&prepared).await.objects().len() },
        );
        let out = sim.run();
        assert!(out.is_quiescent(), "{out:?}");
        // Sinks are the 4 apply computations.
        assert_eq!(job.try_take().unwrap(), 4);
    }

    #[test]
    fn gpipe_throughput_improves_with_more_microbatches() {
        // More micro-batches shrink the pipeline bubble (S+M-1)/M.
        let measure = |m: u32| {
            let mut sim = Sim::new(0);
            let rt = PathwaysRuntime::new(
                &sim,
                ClusterSpec::config_b(4),
                NetworkParams::tpu_cluster(),
                PathwaysConfig::default(),
            );
            let client = rt.client(HostId(0));
            let stages: Vec<_> = (0..4)
                .map(|_| client.virtual_slice(SliceRequest::devices(8)).unwrap())
                .collect();
            let setup = small_setup();
            let p = gpipe_program(&client, &stages, m, &setup);
            let prepared = client.prepare(&p);
            let tokens = setup.global_batch_tokens;
            let job = sim.spawn("c", async move {
                measure_tokens_per_sec(&client, &prepared, tokens, 2).await
            });
            sim.run_to_quiescence();
            job.try_take().unwrap()
        };
        let m2 = measure(2);
        let m8 = measure(8);
        assert!(m8 > m2, "M=8 ({m8} tok/s) should beat M=2 ({m2} tok/s)");
    }

    #[test]
    fn chained_spmd_steps_pipeline_without_intermediate_awaits() {
        let mut sim = Sim::new(0);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(2),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let slice = client.virtual_slice(SliceRequest::devices(16)).unwrap();
        let setup = small_setup();
        let chain = spmd_chained(&client, &slice, &setup);
        let init = client.prepare(&chain.init);
        let step = client.prepare(&chain.step);
        let tokens = setup.global_batch_tokens;
        let core = std::sync::Arc::clone(rt.core());
        let job = sim.spawn("c", async move {
            measure_tokens_per_sec_chained(&client, &init, &step, &chain, tokens, 3).await
        });
        let out = sim.run();
        assert!(out.is_quiescent(), "{out:?}");
        assert!(job.try_take().unwrap() > 0.0);
        assert!(core.store.is_empty(), "weights chain leaked objects");
    }

    #[test]
    fn chained_two_island_steps_run_over_dcn() {
        let mut sim = Sim::new(0);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::islands_of(2, 4, 8),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let s0 = client
            .virtual_slice(SliceRequest::devices(32).in_island(IslandId(0)))
            .unwrap();
        let s1 = client
            .virtual_slice(SliceRequest::devices(32).in_island(IslandId(1)))
            .unwrap();
        let mut setup = small_setup();
        setup.calib.grad_bytes_per_param = 0.01;
        let chain = two_island_chained(&client, &[s0, s1], &setup);
        assert_eq!(chain.step_inputs.len(), 2);
        assert_eq!(chain.step_outputs.len(), 2);
        let init = client.prepare(&chain.init);
        let step = client.prepare(&chain.step);
        let tokens = setup.global_batch_tokens;
        let core = std::sync::Arc::clone(rt.core());
        let job = sim.spawn("c", async move {
            measure_tokens_per_sec_chained(&client, &init, &step, &chain, tokens, 2).await
        });
        let out = sim.run();
        assert!(out.is_quiescent(), "{out:?}");
        assert!(job.try_take().unwrap() > 0.0);
        assert!(core.store.is_empty());
    }

    #[test]
    fn two_island_program_runs_over_dcn() {
        let mut sim = Sim::new(0);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::islands_of(2, 4, 8),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let s0 = client
            .virtual_slice(SliceRequest::devices(32).in_island(IslandId(0)))
            .unwrap();
        let s1 = client
            .virtual_slice(SliceRequest::devices(32).in_island(IslandId(1)))
            .unwrap();
        let mut setup = small_setup();
        // Keep the exchange small enough for a quick test.
        setup.calib.grad_bytes_per_param = 0.01;
        let p = two_island_data_parallel_program(&client, &[s0, s1], &setup);
        assert_eq!(p.computations().len(), 4);
        let prepared = client.prepare(&p);
        let job = sim.spawn(
            "c",
            async move { client.run(&prepared).await.objects().len() },
        );
        let out = sim.run();
        assert!(out.is_quiescent(), "{out:?}");
        assert_eq!(job.try_take().unwrap(), 2);
    }
}
