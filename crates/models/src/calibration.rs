//! Hardware calibration constants for the analytic cost model.
//!
//! Absolute throughput depends on constants we cannot measure (the
//! paper's testbed), so these are calibrated to public TPUv3 figures:
//! ~61 TFLOP/s bf16 per core, 16 GiB HBM per core. The achieved-FLOPs
//! fraction (MFU) is set to land Table 1's T5-3B/11B rows in the right
//! range; EXPERIMENTS.md records paper-vs-measured for every row.

use serde::{Deserialize, Serialize};

use pathways_sim::SimDuration;

use crate::transformer::TransformerConfig;

/// TPU-like device calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Peak bf16 FLOP/s per core.
    pub peak_flops_per_core: f64,
    /// Achieved fraction of peak for large-matmul training steps.
    pub mfu: f64,
    /// Bytes transferred per parameter during a data-parallel gradient
    /// exchange. Calibrated from §5.3: the paper reports 457 GB for the
    /// 64B model and 1030 GB for 136B, i.e. ~7.2 bytes/param (gradients
    /// plus optimizer-state exchange).
    pub grad_bytes_per_param: f64,
    /// Fixed per-kernel launch overhead folded into each computation.
    pub kernel_overhead: SimDuration,
    /// Fraction of an SPMD training step spent in non-overlapped
    /// collective communication (per-layer activation exchanges the
    /// analytic torus model cannot see). Calibrated so Table 2's
    /// SPMD-vs-pipelining crossover reproduces: the paper's pipeline
    /// slightly out-performs SPMD because "collective communication
    /// within the SPMD computation incurs higher overhead than pipeline
    /// bubble overhead".
    pub spmd_comm_fraction: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            peak_flops_per_core: 61.0e12,
            mfu: 0.18,
            grad_bytes_per_param: 7.2,
            kernel_overhead: SimDuration::from_micros(25),
            spmd_comm_fraction: 0.28,
        }
    }
}

impl Calibration {
    /// Effective FLOP/s per core.
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops_per_core * self.mfu
    }

    /// Device time for one training step of `model` over `tokens`
    /// processed by `cores` cores (perfect FLOP partitioning; the
    /// communication terms are added by the program builders).
    pub fn step_compute_time(
        &self,
        model: &TransformerConfig,
        tokens: u64,
        cores: u32,
    ) -> SimDuration {
        assert!(cores > 0, "at least one core required");
        let flops = model.train_flops_per_token() * tokens as f64;
        let per_core = flops / cores as f64 / self.effective_flops();
        self.kernel_overhead + SimDuration::from_secs_f64(per_core)
    }

    /// Bytes each island exchanges in a cross-island data-parallel
    /// gradient reduction.
    pub fn grad_exchange_bytes(&self, model: &TransformerConfig) -> u64 {
        (model.params() as f64 * self.grad_bytes_per_param) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_exchange_matches_paper_transfer_sizes() {
        let c = Calibration::default();
        let b64 = c.grad_exchange_bytes(&TransformerConfig::decoder_64b()) as f64 / 1e9;
        let b136 = c.grad_exchange_bytes(&TransformerConfig::decoder_136b()) as f64 / 1e9;
        // Paper: 457 GB and 1030 GB.
        assert!((b64 - 457.0).abs() / 457.0 < 0.05, "64B: {b64} GB");
        assert!((b136 - 1030.0).abs() / 1030.0 < 0.05, "136B: {b136} GB");
    }

    #[test]
    fn step_time_scales_inversely_with_cores() {
        let c = Calibration::default();
        let m = TransformerConfig::decoder_3b();
        let t128 = c.step_compute_time(&m, 2048 * 1024, 128);
        let t512 = c.step_compute_time(&m, 2048 * 1024, 512);
        let ratio = t128.as_secs_f64() / t512.as_secs_f64();
        assert!((3.5..4.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn more_tokens_take_longer() {
        let c = Calibration::default();
        let m = TransformerConfig::t5_base();
        assert!(c.step_compute_time(&m, 2_000_000, 32) > c.step_compute_time(&m, 1_000_000, 32));
    }
}
