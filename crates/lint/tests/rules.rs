//! Fixture suite: one known-bad snippet per rule asserting the rule
//! fires, and suppressed/clean variants asserting it does not.
//!
//! Fixtures live in `tests/fixtures/` and are analyzed — never
//! compiled — so they can contain deliberately-bad code. Each is
//! linted under a synthetic [`FileCtx`] placing it in a sim-visible
//! crate's `src/`, the strictest scope.

use pathways_lint::rules::{
    LOCK_ACROSS_AWAIT, NONDET_CONTAINER, PANIC_PATH, RAW_THREAD, WALL_CLOCK,
};
use pathways_lint::{lint_source, Allowlist, FileCtx, FileKind, Status, Violation};

/// Lints a fixture as if it were `crates/core/src/<name>` (sim-visible
/// runtime code).
fn lint_fixture(name: &str, allowlist: &Allowlist) -> Vec<Violation> {
    let path = format!("{}/tests/fixtures/{}", env!("CARGO_MANIFEST_DIR"), name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let rel = format!("crates/core/src/{name}");
    let ctx = FileCtx {
        rel_path: &rel,
        crate_name: "core",
        kind: FileKind::Src,
    };
    lint_source(&ctx, &src, allowlist).violations
}

fn errors<'a>(vs: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
    vs.iter()
        .filter(|v| v.rule == rule && v.status == Status::Error)
        .collect()
}

// ------------------------------------------------------ nondet-container

#[test]
fn nondet_container_fires_on_every_shape() {
    let vs = lint_fixture("nondet_container_bad.rs", &Allowlist::default());
    let hits = errors(&vs, NONDET_CONTAINER);
    // use-path, use-group, qualified return type, qualified call.
    assert_eq!(hits.len(), 4, "{hits:#?}");
    assert!(hits.iter().any(|v| v.message.contains("FxHashSet")));
    assert!(hits.iter().any(|v| v.message.contains("FxHashMap")));
}

#[test]
fn nondet_container_spares_deterministic_hashers_and_strings() {
    let vs = lint_fixture("nondet_container_ok.rs", &Allowlist::default());
    assert!(errors(&vs, NONDET_CONTAINER).is_empty(), "{vs:#?}");
}

#[test]
fn nondet_container_suppressions_silence() {
    let vs = lint_fixture("nondet_container_suppressed.rs", &Allowlist::default());
    assert!(errors(&vs, NONDET_CONTAINER).is_empty(), "{vs:#?}");
    // The violations are still visible, just downgraded.
    assert_eq!(
        vs.iter()
            .filter(|v| v.rule == NONDET_CONTAINER && v.status == Status::Suppressed)
            .count(),
        2,
        "{vs:#?}"
    );
}

#[test]
fn nondet_container_only_applies_to_sim_visible_crates() {
    let src = "use std::collections::HashMap;";
    let ctx = FileCtx {
        rel_path: "crates/lint/src/x.rs",
        crate_name: "lint",
        kind: FileKind::Src,
    };
    let vs = lint_source(&ctx, src, &Allowlist::default()).violations;
    assert!(vs.is_empty(), "{vs:#?}");
}

// ------------------------------------------------------------ wall-clock

#[test]
fn wall_clock_fires_on_every_shape() {
    let vs = lint_fixture("wall_clock_bad.rs", &Allowlist::default());
    let hits = errors(&vs, WALL_CLOCK);
    // use Instant, use-group SystemTime, qualified Instant::now,
    // std::thread::sleep, SystemTime::now's import already counted —
    // plus thread::sleep and thread_rng.
    assert_eq!(hits.len(), 6, "{hits:#?}");
    assert!(hits.iter().any(|v| v.message.contains("thread_rng")));
    assert!(hits.iter().any(|v| v.message.contains("thread::sleep")));
}

#[test]
fn wall_clock_suppression_and_duration_are_clean() {
    let vs = lint_fixture("wall_clock_suppressed.rs", &Allowlist::default());
    assert!(errors(&vs, WALL_CLOCK).is_empty(), "{vs:#?}");
}

#[test]
fn wall_clock_exempts_the_bench_wall_time_module() {
    let src = "use std::time::Instant;\nfn m() { let t = Instant::now(); }";
    let ctx = FileCtx {
        rel_path: "crates/bench/src/scale.rs",
        crate_name: "bench",
        kind: FileKind::Src,
    };
    let vs = lint_source(&ctx, src, &Allowlist::default()).violations;
    assert!(vs.is_empty(), "{vs:#?}");
}

// ----------------------------------------------------- lock-across-await

#[test]
fn lock_across_await_fires_on_held_guards() {
    let vs = lint_fixture("lock_across_await_bad.rs", &Allowlist::default());
    let hits = errors(&vs, LOCK_ACROSS_AWAIT);
    // named guard, rwlock write guard, temporary in same statement.
    assert_eq!(hits.len(), 3, "{hits:#?}");
    assert!(hits.iter().any(|v| v.message.contains("`guard`")));
    assert!(hits.iter().any(|v| v.message.contains("same statement")));
}

#[test]
fn lock_across_await_spares_released_guards() {
    let vs = lint_fixture("lock_across_await_ok.rs", &Allowlist::default());
    assert!(errors(&vs, LOCK_ACROSS_AWAIT).is_empty(), "{vs:#?}");
}

#[test]
fn lock_across_await_suppression_silences() {
    let vs = lint_fixture("lock_across_await_suppressed.rs", &Allowlist::default());
    assert!(errors(&vs, LOCK_ACROSS_AWAIT).is_empty(), "{vs:#?}");
}

// ------------------------------------------------------------ panic-path

#[test]
fn panic_path_fires_outside_tests_only() {
    let vs = lint_fixture("panic_path_bad.rs", &Allowlist::default());
    let hits = errors(&vs, PANIC_PATH);
    // unwrap, expect, panic! — and nothing from the #[cfg(test)] mod
    // or the unwrap_or/unwrap_or_default relatives.
    assert_eq!(hits.len(), 3, "{hits:#?}");
    assert!(hits.iter().all(|v| v.line < 22), "{hits:#?}");
}

#[test]
fn panic_path_honors_suppression_and_allowlist() {
    let allowlist = Allowlist::parse(
        "# fixture allowlist\ncrates/core/src/panic_path_suppressed.rs::allowlisted\n",
    );
    let vs = lint_fixture("panic_path_suppressed.rs", &allowlist);
    assert!(errors(&vs, PANIC_PATH).is_empty(), "{vs:#?}");
    assert_eq!(
        vs.iter().filter(|v| v.status == Status::Suppressed).count(),
        1
    );
    assert_eq!(
        vs.iter()
            .filter(|v| v.status == Status::Allowlisted)
            .count(),
        1
    );
}

// ------------------------------------------------------------ raw-thread

#[test]
fn raw_thread_fires_on_every_shape() {
    let vs = lint_fixture("raw_thread_bad.rs", &Allowlist::default());
    let hits = errors(&vs, RAW_THREAD);
    // use Mutex, use-group Condvar + RwLock, std::thread::spawn,
    // std::thread::Builder, bare thread::spawn, qualified Mutex return
    // type, qualified Mutex::new call.
    assert_eq!(hits.len(), 8, "{hits:#?}");
    assert!(hits.iter().any(|v| v.message.contains("Condvar")));
    assert!(hits.iter().any(|v| v.message.contains("thread::spawn")));
    assert!(hits.iter().any(|v| v.message.contains("thread::Builder")));
}

#[test]
fn raw_thread_spares_nonblocking_sync_and_test_code() {
    let vs = lint_fixture("raw_thread_ok.rs", &Allowlist::default());
    assert!(errors(&vs, RAW_THREAD).is_empty(), "{vs:#?}");
}

#[test]
fn raw_thread_suppression_silences() {
    let vs = lint_fixture("raw_thread_suppressed.rs", &Allowlist::default());
    assert!(errors(&vs, RAW_THREAD).is_empty(), "{vs:#?}");
    assert_eq!(
        vs.iter()
            .filter(|v| v.rule == RAW_THREAD && v.status == Status::Suppressed)
            .count(),
        2,
        "{vs:#?}"
    );
}

#[test]
fn raw_thread_exempts_the_executor_module() {
    let src = "use std::sync::{Condvar, Mutex};\nfn w() { std::thread::spawn(|| {}); }";
    for rel in [
        "crates/sim/src/exec/threaded.rs",
        "crates/sim/src/exec/mod.rs",
    ] {
        let ctx = FileCtx {
            rel_path: rel,
            crate_name: "sim",
            kind: FileKind::Src,
        };
        let vs = lint_source(&ctx, src, &Allowlist::default()).violations;
        assert!(vs.iter().all(|v| v.rule != RAW_THREAD), "{rel}: {vs:#?}");
    }
    // The same source anywhere else fires.
    let ctx = FileCtx {
        rel_path: "crates/core/src/runtime.rs",
        crate_name: "core",
        kind: FileKind::Src,
    };
    let vs = lint_source(&ctx, src, &Allowlist::default()).violations;
    assert_eq!(errors(&vs, RAW_THREAD).len(), 3, "{vs:#?}");
}

#[test]
fn panic_path_skips_non_audited_scopes() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    for (rel, crate_name, kind) in [
        // Integration tests of an audited crate: fine.
        ("crates/core/tests/chaos.rs", "core", FileKind::Tests),
        // Bench harness code: not part of the audited runtime.
        ("crates/bench/src/micro.rs", "bench", FileKind::Src),
        // Examples: user-facing demos may unwrap.
        ("examples/quickstart.rs", "pathways", FileKind::Examples),
    ] {
        let ctx = FileCtx {
            rel_path: rel,
            crate_name,
            kind,
        };
        let vs = lint_source(&ctx, src, &Allowlist::default()).violations;
        assert!(vs.is_empty(), "{rel}: {vs:#?}");
    }
}
