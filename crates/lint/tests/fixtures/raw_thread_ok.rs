//! Fixture: non-blocking `std::sync` items, executor-mediated spawns
//! and test-scoped threads are all fine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

fn executor_spawn(exec: &crate::ExecutorRef) {
    exec.spawn(async {});
}

fn other_crates_thread_module() {
    // A `thread` path segment under a non-std crate is not std::thread.
    rayon::thread::spawn_handler();
}

fn counters(c: &AtomicU64) -> u64 {
    c.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    #[test]
    fn stress_may_race_real_threads() {
        let t = std::thread::spawn(|| {});
        let _m = std::sync::Mutex::new(0u32);
        t.join().unwrap();
    }
}
