//! Fixture: panic paths in non-test runtime code must fire — and the
//! same constructs inside `#[cfg(test)]` / `#[test]` code must not.

fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn expects(x: Result<u32, ()>) -> u32 {
    x.expect("fixture")
}

fn panics(x: u32) {
    if x > 3 {
        panic!("fixture: x too big");
    }
}

// Not flagged: non-panicking relatives.
fn relatives(x: Option<u32>) -> u32 {
    x.unwrap_or(0).max(x.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_panics_freely() {
        let v: Option<u32> = None;
        assert!(std::panic::catch_unwind(|| v.unwrap()).is_err());
        let r: Result<u32, ()> = Err(());
        r.expect("fine in tests");
        panic!("fine in tests");
    }
}
