//! Fixture: the rule must NOT fire here.
//!
//! - explicit deterministic hashers (that is how the FxHashMap alias
//!   itself is defined),
//! - ordered std containers,
//! - mentions inside strings and comments (lexer correctness).

use std::collections::BTreeMap;
use std::hash::BuildHasherDefault;

// The alias-definition shape: a HashMap with a named deterministic
// hasher is the escape hatch the Fx types are built from.
pub type DetMap<K, V> =
    std::collections::HashMap<K, V, BuildHasherDefault<crate::FxHasher>>;
pub type DetSet<T> = std::collections::HashSet<T, BuildHasherDefault<crate::FxHasher>>;

fn ordered(b: BTreeMap<u32, u32>) {
    let _ = b;
}

fn strings_and_comments() -> &'static str {
    // std::collections::HashMap in a comment is fine.
    let raw = r#"std::collections::HashMap in a raw string"#;
    let _ = raw;
    "std::collections::HashSet in a string"
}
