//! Fixture: suppressed wall-clock uses must not fire, and virtual
//! time / `Duration` (pure data) are always fine.

use std::time::Duration;

// pathlint: allow(wall-clock) — this fixture measures real elapsed time
use std::time::Instant;

fn virtual_time_is_fine(now: crate::SimInstant) -> Duration {
    now.elapsed()
}
