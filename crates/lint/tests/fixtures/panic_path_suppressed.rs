//! Fixture: inline suppression and allowlisting both silence the
//! panic-path rule (the allowlist key for `allowlisted` below is
//! `<this fixture's rel_path>::allowlisted`).

fn suppressed(x: Option<u32>) -> u32 {
    // pathlint: allow(panic-path) — length checked two lines up
    x.unwrap()
}

fn allowlisted(x: Option<u32>) -> u32 {
    x.unwrap()
}
