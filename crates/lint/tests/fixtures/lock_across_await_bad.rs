//! Fixture: guards held across `.await` must fire.

async fn named_guard_across_await(state: &Mutex<u32>, ev: &Event) {
    let guard = state.lock();
    ev.wait().await; // guard still live here
    drop(guard);
}

async fn rwlock_write_guard(state: &RwLock<u32>, ev: &Event) {
    let mut w = state.write();
    *w += 1;
    ev.wait().await;
}

async fn temporary_guard_same_statement(state: &Mutex<Queue>, ev: &Event) {
    state.lock().push(ev.wait().await);
}
