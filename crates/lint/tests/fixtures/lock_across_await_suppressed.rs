//! Fixture: a suppressed (reviewed) hold-across-await must not fire.

async fn reviewed_hold(state: &Mutex<u32>, ev: &Event) {
    let guard = state.lock();
    // pathlint: allow(lock-across-await) — single-threaded test executor only
    ev.wait().await;
    drop(guard);
}
