//! Fixture: inline suppressions silence the rule (both placements).

// pathlint: allow(nondet-container) — interop with an external API type
use std::collections::HashMap;

use std::collections::HashSet; // pathlint: allow(nondet-container)

fn f(m: HashMap<u32, u32>, s: HashSet<u32>) {
    let _ = (m, s);
}
