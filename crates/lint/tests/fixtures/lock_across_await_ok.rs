//! Fixture: the rule must NOT fire here — the guard is released
//! before every suspension point.

async fn dropped_before_await(state: &Mutex<u32>, ev: &Event) {
    let guard = state.lock();
    let snapshot = *guard;
    drop(guard);
    ev.wait().await;
    let _ = snapshot;
}

async fn scoped_before_await(state: &Mutex<u32>, ev: &Event) {
    let snapshot = {
        let guard = state.lock();
        *guard
    };
    ev.wait().await;
    let _ = snapshot;
}

async fn temporary_in_earlier_statement(state: &Mutex<u32>, ev: &Event) {
    let snapshot = *state.lock();
    ev.wait().await;
    let _ = snapshot;
}
