//! Fixture: every raw-thread shape must fire.

use std::sync::Mutex;
use std::sync::{Arc, Condvar, RwLock};

fn spawn_detached() {
    std::thread::spawn(|| {});
}

fn spawn_named() {
    let _ = std::thread::Builder::new().name("rogue".into());
}

fn spawn_bare() {
    use std::thread;
    thread::spawn(|| {});
}

fn qualified_state() -> std::sync::Mutex<u32> {
    std::sync::Mutex::new(0)
}
