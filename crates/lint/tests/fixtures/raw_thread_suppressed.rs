//! Fixture: suppressed raw-thread uses must not fire.

// pathlint: allow(raw-thread) — FFI callback thread owned by the shim
use std::sync::Condvar;

fn helper() {
    // pathlint: allow(raw-thread) — bridging a blocking C API
    std::thread::spawn(|| {});
}
