//! Fixture: every shape of banned-container usage must fire.

use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};

fn qualified() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new()
}

fn grouped(m: HashMap<u32, u32>, s: HashSet<u32>, b: BTreeMap<u32, u32>) {
    let _ = (m, s, b);
}
