//! Fixture: every wall-clock / OS-entropy shape must fire.

use std::time::Instant;
use std::time::{Duration, SystemTime};

fn measure() {
    let start = std::time::Instant::now();
    std::thread::sleep(Duration::from_millis(1));
    let _ = (start, SystemTime::now());
}

fn sleepy() {
    use std::thread;
    thread::sleep(std::time::Duration::from_millis(1));
}

fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
