//! `pathlint` CLI.
//!
//! ```text
//! pathlint                # lint the workspace, write LINT_REPORT.json
//! pathlint --bless-panics # regenerate the panic allowlist from the
//!                         # current violations (then hand-prune it!)
//! pathlint --no-notes     # hide allowlisted/suppressed notes
//! ```
//!
//! Exit code 0 iff the workspace is clean: zero unsuppressed
//! violations and zero stale allowlist entries. The JSON report lands
//! in the workspace root (override the directory with
//! `PATHLINT_OUT_DIR`), mirroring the bench crate's `BENCH_*.json`.

use std::path::PathBuf;
use std::process::ExitCode;

use pathways_lint::{find_workspace_root, lint_workspace, rules, Allowlist, Status};

const ALLOWLIST_REL: &str = "crates/lint/panic_allowlist.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless-panics");
    let no_notes = args.iter().any(|a| a == "--no-notes");
    if let Some(unknown) = args
        .iter()
        .find(|a| *a != "--bless-panics" && *a != "--no-notes")
    {
        eprintln!("pathlint: unknown argument `{unknown}`");
        eprintln!("usage: pathlint [--bless-panics] [--no-notes]");
        return ExitCode::from(2);
    }

    let cwd = std::env::current_dir().expect("cwd");
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!("pathlint: no workspace root ([workspace] Cargo.toml) above {cwd:?}");
        return ExitCode::from(2);
    };

    let allowlist_path = root.join(ALLOWLIST_REL);
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };

    let report = match lint_workspace(&root, &allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pathlint: walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    if bless {
        let mut keys: Vec<&str> = report
            .violations
            .iter()
            .filter(|v| v.rule == rules::PANIC_PATH && v.status != Status::Suppressed)
            .filter_map(|v| v.allow_key.as_deref())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let mut text = String::from(
            "# pathlint panic allowlist — `file.rs::fn_name`, one per line.\n\
             #\n\
             # Every entry vouches that the panics in that function are\n\
             # genuinely unreachable (invariants enforced elsewhere) or that\n\
             # aborting is the correct response (corrupted simulator state).\n\
             # Stale entries fail the lint, so this list only ever shrinks.\n\
             # Regenerate with `cargo run -p pathways-lint -- --bless-panics`,\n\
             # then hand-review the diff — blessing is not auditing.\n\n",
        );
        for k in keys {
            text.push_str(k);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(&allowlist_path, text) {
            eprintln!("pathlint: cannot write {allowlist_path:?}: {e}");
            return ExitCode::from(2);
        }
        println!("pathlint: wrote {ALLOWLIST_REL}; re-run to verify it is exhaustive");
        return ExitCode::SUCCESS;
    }

    let text = report.render_text();
    if no_notes {
        for line in text.lines() {
            if !line.starts_with("note:") {
                println!("{line}");
            }
        }
    } else {
        print!("{text}");
    }

    let out_dir = std::env::var_os("PATHLINT_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.clone());
    let json_path = out_dir.join("LINT_REPORT.json");
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("pathlint: cannot write {json_path:?}: {e}");
        return ExitCode::from(2);
    }

    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
