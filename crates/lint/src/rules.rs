//! The pathlint rules.
//!
//! Each rule encodes one clause of the repo's determinism/concurrency
//! contract (see README.md "Static analysis & invariants"):
//!
//! - [`NONDET_CONTAINER`][]: `std::collections::{HashMap,HashSet}` are
//!   banned in sim-visible crates — their `RandomState` hasher makes
//!   iteration order differ per process, which is exactly the kind of
//!   nondeterminism that silently breaks bit-identical replay. Use
//!   `pathways_sim::hash::{FxHashMap,FxHashSet}`. A usage that
//!   explicitly names a deterministic hasher (`BuildHasherDefault` /
//!   `FxHasher` in its generic arguments) is exempt — that is how the
//!   alias itself is defined.
//! - [`WALL_CLOCK`][]: `std::time::{Instant,SystemTime}`,
//!   `std::thread::sleep` and `thread_rng` are banned everywhere
//!   except the bench crate's wall-time measurement module — simulated
//!   time comes from the virtual-time executor, randomness from seeded
//!   RNGs.
//! - [`LOCK_ACROSS_AWAIT`][]: a `parking_lot`-style guard (`.lock()` /
//!   `.read()` / `.write()` / `.upgradable_read()`) whose scope
//!   encloses an `.await` — the classic deadlock/latency hazard for
//!   the work-stealing executor on the roadmap (guards are not `Send`,
//!   and even on a single thread a held lock across a suspension point
//!   inverts the lock order the resumed task expects).
//! - [`PANIC_PATH`][]: `unwrap` / `expect` / `panic!` in non-test code
//!   of the runtime crates, audited against the checked-in allowlist
//!   (`crates/lint/panic_allowlist.txt`).
//! - [`RAW_THREAD`][]: `thread::spawn` / `thread::Builder` and
//!   `std::sync::{Mutex,RwLock,Condvar}` anywhere outside the sim
//!   crate's executor module — every OS thread and blocking primitive
//!   must flow through the `Executor` trait so the deterministic
//!   backend stays the single source of scheduling truth (and so the
//!   threaded backend's watchdog sees every task).
//!
//! All rules are lexical (token-sequence) analyses: no type
//! resolution, no macro expansion. That trades a small class of
//! false negatives (e.g. `use std::collections as c; c::HashMap`) for
//! zero build-time dependencies; the fixture suite pins what each rule
//! does and does not catch.

use crate::lexer::{Lexed, Token, TokenKind};
use crate::scope::ScopeMap;

/// Rule ids (also the names used in `// pathlint: allow(<rule>)`).
pub const NONDET_CONTAINER: &str = "nondet-container";
pub const WALL_CLOCK: &str = "wall-clock";
pub const LOCK_ACROSS_AWAIT: &str = "lock-across-await";
pub const PANIC_PATH: &str = "panic-path";
pub const RAW_THREAD: &str = "raw-thread";

/// Every rule id, for suppression validation.
pub const ALL_RULES: [&str; 5] = [
    NONDET_CONTAINER,
    WALL_CLOCK,
    LOCK_ACROSS_AWAIT,
    PANIC_PATH,
    RAW_THREAD,
];

/// Crates whose state is visible to the simulator: nondeterministic
/// containers there can leak into traces, schedules and figures.
pub const SIM_VISIBLE_CRATES: [&str; 6] = ["sim", "net", "device", "plaque", "core", "models"];

/// Crates whose non-test panic paths are audited (same set: these are
/// the crates a production controller actually runs).
pub const PANIC_AUDIT_CRATES: [&str; 6] = SIM_VISIBLE_CRATES;

/// Files exempt from [`WALL_CLOCK`]: the bench crate's wall-time
/// measurement modules are the one place wall-clock readings are the
/// point (sim-time/wall-time ratio and dispatch-throughput reporting),
/// and the threaded executor backend drives real monotonic timers.
pub const WALL_CLOCK_EXEMPT: [&str; 3] = [
    "crates/bench/src/scale.rs",
    "crates/bench/src/dispatch.rs",
    "crates/sim/src/exec/threaded.rs",
];

/// Path prefix exempt from [`RAW_THREAD`]: the executor module is the
/// one place OS threads and blocking primitives are allowed — that is
/// where they are wrapped behind the `Executor` trait.
pub const RAW_THREAD_EXEMPT_PREFIX: &str = "crates/sim/src/exec/";

/// Where a file sits within its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` (including `src/bin/`).
    Src,
    /// `tests/` integration tests.
    Tests,
    /// `benches/`.
    Benches,
    /// `examples/`.
    Examples,
}

/// Per-file context the rules dispatch on.
#[derive(Debug, Clone)]
pub struct FileCtx<'a> {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: &'a str,
    /// Short crate name (`core`, `sim`, … or `pathways` for the root).
    pub crate_name: &'a str,
    pub kind: FileKind,
}

/// A rule hit before suppression/allowlist resolution.
#[derive(Debug, Clone)]
pub struct RawViolation {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
    /// `file::fn` allowlist key ([`PANIC_PATH`] only).
    pub allow_key: Option<String>,
}

/// Runs every applicable rule over one lexed file.
pub fn check(ctx: &FileCtx, lexed: &Lexed, scopes: &ScopeMap) -> Vec<RawViolation> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    if SIM_VISIBLE_CRATES.contains(&ctx.crate_name) {
        nondet_container(toks, &mut out);
    }
    if !WALL_CLOCK_EXEMPT.contains(&ctx.rel_path) {
        wall_clock(toks, &mut out);
    }
    lock_across_await(toks, scopes, &mut out);
    if ctx.kind == FileKind::Src && PANIC_AUDIT_CRATES.contains(&ctx.crate_name) {
        panic_path(ctx, toks, scopes, &mut out);
    }
    if !ctx.rel_path.starts_with(RAW_THREAD_EXEMPT_PREFIX) {
        raw_thread(toks, scopes, &mut out);
    }
    out
}

fn violation(out: &mut Vec<RawViolation>, rule: &'static str, line: u32, message: String) {
    out.push(RawViolation {
        rule,
        line,
        message,
        allow_key: None,
    });
}

/// Matches `a::b` path segments: is `toks[i]` the ident `seg` followed
/// by `::`?
fn seg(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_ident(name))
        && toks
            .get(i + 1)
            .is_some_and(|t| t.kind == TokenKind::PathSep)
}

// ---------------------------------------------------------------- rule 1

fn nondet_container(toks: &[Token], out: &mut Vec<RawViolation>) {
    let mut i = 0;
    while i < toks.len() {
        // `std :: collections ::` …
        if seg(toks, i, "std") && seg(toks, i + 2, "collections") {
            let after = i + 4;
            match toks.get(after) {
                Some(t)
                    if t.kind == TokenKind::Ident
                        && is_banned_container(&t.text)
                        && !names_deterministic_hasher(toks, after + 1) =>
                {
                    violation(
                        out,
                        NONDET_CONTAINER,
                        t.line,
                        format!(
                            "std::collections::{} is nondeterministic (RandomState); \
                             use pathways_sim::hash::Fx{}",
                            t.text, t.text
                        ),
                    );
                }
                // `use std::collections::{BTreeMap, HashMap, …};`
                Some(t) if t.is_punct('{') => {
                    let mut j = after + 1;
                    let mut level = 1usize;
                    while j < toks.len() && level > 0 {
                        match &toks[j].kind {
                            TokenKind::Punct('{') => level += 1,
                            TokenKind::Punct('}') => level -= 1,
                            TokenKind::Ident if is_banned_container(&toks[j].text) => {
                                violation(
                                    out,
                                    NONDET_CONTAINER,
                                    toks[j].line,
                                    format!(
                                        "std::collections::{} is nondeterministic (RandomState); \
                                         use pathways_sim::hash::Fx{}",
                                        toks[j].text, toks[j].text
                                    ),
                                );
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

fn is_banned_container(name: &str) -> bool {
    name == "HashMap" || name == "HashSet"
}

/// Does the generic-argument list starting at `toks[i]` (if any) name a
/// deterministic hasher? Handles nested generics (`Vec<Vec<u8>>` emits
/// two `>` tokens) and skips `->` arrows inside `Fn(..) -> T` args.
fn names_deterministic_hasher(toks: &[Token], i: usize) -> bool {
    if !toks.get(i).is_some_and(|t| t.is_punct('<')) {
        return false;
    }
    let mut level = 0i32;
    let mut j = i;
    // Bounded scan: a type argument list longer than this is lex
    // confusion (e.g. a stray `<` comparison), not a real generic.
    let limit = j + 256;
    while j < toks.len() && j < limit {
        match &toks[j].kind {
            TokenKind::Punct('<') => level += 1,
            TokenKind::Punct('>') => {
                // `->` return-type arrow inside Fn(...) sugar.
                if j > 0 && toks[j - 1].is_punct('-') {
                    j += 1;
                    continue;
                }
                level -= 1;
                if level == 0 {
                    return false;
                }
            }
            TokenKind::Ident
                if toks[j].text == "BuildHasherDefault" || toks[j].text == "FxHasher" =>
            {
                return true;
            }
            _ => {}
        }
        j += 1;
    }
    false
}

// ---------------------------------------------------------------- rule 2

fn wall_clock(toks: &[Token], out: &mut Vec<RawViolation>) {
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if seg(toks, i, "std") && seg(toks, i + 2, "time") {
            flag_time_names(toks, i + 4, out);
        }
        if seg(toks, i, "thread") && toks.get(i + 2).is_some_and(|t| t.is_ident("sleep")) {
            // Covers both `std::thread::sleep` and `thread::sleep`;
            // skip when `thread` is itself mid-path *after* a non-std
            // prefix (`tokio::thread::…` — not a std sleep).
            let prev_sep = i >= 1 && toks[i - 1].kind == TokenKind::PathSep;
            let std_prefix = i >= 2 && prev_sep && toks[i - 2].is_ident("std");
            if !prev_sep || std_prefix {
                violation(
                    out,
                    WALL_CLOCK,
                    toks[i + 2].line,
                    "thread::sleep blocks on the OS clock; use the virtual-time executor's timers"
                        .into(),
                );
            }
        }
        if t.is_ident("thread_rng") {
            violation(
                out,
                WALL_CLOCK,
                t.line,
                "thread_rng is OS-entropy-seeded; use a seeded Rng so runs replay".into(),
            );
        }
        i += 1;
    }
}

/// Flags `Instant` / `SystemTime` at `toks[i]`, or inside a
/// `{…}` use-group starting there.
fn flag_time_names(toks: &[Token], i: usize, out: &mut Vec<RawViolation>) {
    let flag = |t: &Token, out: &mut Vec<RawViolation>| {
        violation(
            out,
            WALL_CLOCK,
            t.line,
            format!(
                "std::time::{} reads the wall clock; sim time comes from the virtual-time \
                 executor (bench's wall-time module is the one exemption)",
                t.text
            ),
        );
    };
    match toks.get(i) {
        Some(t) if t.is_ident("Instant") || t.is_ident("SystemTime") => flag(t, out),
        Some(t) if t.is_punct('{') => {
            let mut j = i + 1;
            let mut level = 1usize;
            while j < toks.len() && level > 0 {
                match &toks[j].kind {
                    TokenKind::Punct('{') => level += 1,
                    TokenKind::Punct('}') => level -= 1,
                    TokenKind::Ident
                        if toks[j].text == "Instant" || toks[j].text == "SystemTime" =>
                    {
                        flag(&toks[j], out)
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------- rule 3

/// Guard-acquiring method names. `.read()`/`.write()` can also be
/// `io::Read`/`io::Write` calls — a deliberate over-approximation;
/// false positives take an inline `// pathlint: allow(..)` with a
/// justification, which is exactly the review marker we want near
/// anything lock-shaped next to an `.await`.
const GUARD_METHODS: [&str; 4] = ["lock", "read", "write", "upgradable_read"];

#[derive(Debug)]
struct Guard {
    name: Option<String>,
    depth: u32,
    line: u32,
    method: String,
}

fn lock_across_await(toks: &[Token], scopes: &ScopeMap, out: &mut Vec<RawViolation>) {
    let mut guards: Vec<Guard> = Vec::new();
    // Statement-local state: the last guard-acquiring call seen in the
    // current statement — `(line, method, index of its closing paren)`.
    let mut stmt_lock: Option<(u32, String, usize)> = None;
    // Pending `let` binding name, plus whether its initializer starts
    // with a deref (`let v = *m.lock();` binds a copied value — the
    // temporary guard dies at the `;`, so it is not a held guard).
    let mut stmt_let: Option<Option<String>> = None;
    let mut stmt_eq_seen = false;
    let mut stmt_deref = false;

    let mut i = 0;
    while i < toks.len() {
        let depth = scopes.depth[i];
        // Scope exit kills guards bound deeper than where we are now.
        guards.retain(|g| g.depth <= depth);

        let t = &toks[i];
        match &t.kind {
            TokenKind::Ident if t.text == "let" => {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                let name = toks
                    .get(j)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone());
                stmt_let = Some(name);
                stmt_eq_seen = false;
                stmt_deref = false;
            }
            TokenKind::Punct('=') if stmt_let.is_some() && !stmt_eq_seen => {
                stmt_eq_seen = true;
                stmt_deref = toks.get(i + 1).is_some_and(|n| n.is_punct('*'));
            }
            // `drop(guard)` releases it early.
            TokenKind::Ident
                if t.text == "drop"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                    guards.retain(|g| g.name.as_deref() != Some(name.text.as_str()));
                }
            }
            TokenKind::Ident if t.text == "await" && i >= 1 && toks[i - 1].is_punct('.') => {
                for g in &guards {
                    violation(
                        out,
                        LOCK_ACROSS_AWAIT,
                        t.line,
                        format!(
                            "`.await` while `{}` (acquired via .{}() on line {}) is held — a \
                             suspended task holding a lock deadlocks the executor; release the \
                             guard (drop or end its scope) before awaiting",
                            g.name.as_deref().unwrap_or("<guard>"),
                            g.method,
                            g.line
                        ),
                    );
                }
                if let Some((line, method, _)) = &stmt_lock {
                    violation(
                        out,
                        LOCK_ACROSS_AWAIT,
                        t.line,
                        format!(
                            "`.await` in the same statement as .{method}() (line {line}) — the \
                             temporary guard lives to the end of the statement, across the \
                             suspension point"
                        ),
                    );
                }
            }
            TokenKind::Ident
                if GUARD_METHODS.contains(&t.text.as_str())
                    && i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                // Find the call's closing paren (usually `i + 2`).
                let mut level = 0usize;
                let mut j = i + 1;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokenKind::Punct('(') => level += 1,
                        TokenKind::Punct(')') => {
                            level -= 1;
                            if level == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                stmt_lock = Some((t.line, t.text.clone(), j));
            }
            // A block boundary ends any statement: tail expressions
            // carry no `;`, so their temporaries (and pending `let`s)
            // die here. (A closure body inside the same statement also
            // clears this — an accepted lexical false negative.)
            TokenKind::Punct('}') => {
                stmt_lock = None;
                stmt_let = None;
            }
            TokenKind::Punct(';') => {
                if let Some((line, method, close_idx)) = stmt_lock.take() {
                    // A `let` binds the guard itself only when the lock
                    // call is the statement's final expression and not
                    // behind a deref; `m.lock().len()` / `*m.lock()`
                    // bind values and the temporary dies right here.
                    let lock_is_final = close_idx + 1 == i;
                    if let Some(name) = stmt_let.take() {
                        if lock_is_final && !stmt_deref {
                            // Re-binding a name sheds the old guard.
                            if let Some(n) = &name {
                                guards.retain(|g| g.name.as_deref() != Some(n.as_str()));
                            }
                            guards.push(Guard {
                                name,
                                depth,
                                line,
                                method,
                            });
                        }
                    }
                    // A non-`let` temporary dies here.
                }
                stmt_let = None;
            }
            _ => {}
        }
        i += 1;
    }
}

// ---------------------------------------------------------------- rule 4

fn panic_path(ctx: &FileCtx, toks: &[Token], scopes: &ScopeMap, out: &mut Vec<RawViolation>) {
    let mut i = 0;
    while i < toks.len() {
        if scopes.in_test[i] {
            i += 1;
            continue;
        }
        let t = &toks[i];
        let hit = match &t.kind {
            TokenKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            }
            TokenKind::Ident if t.text == "panic" => {
                toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            }
            _ => false,
        };
        if hit {
            let func = scopes.enclosing_fn[i]
                .clone()
                .unwrap_or_else(|| "<item>".into());
            let key = format!("{}::{}", ctx.rel_path, func);
            out.push(RawViolation {
                rule: PANIC_PATH,
                line: t.line,
                message: format!(
                    "`{}` in non-test runtime code (fn `{}`): return a typed error, or — if \
                     genuinely unreachable — add `{}` to crates/lint/panic_allowlist.txt",
                    if t.text == "panic" {
                        "panic!"
                    } else {
                        t.text.as_str()
                    },
                    func,
                    key
                ),
                allow_key: Some(key),
            });
        }
        i += 1;
    }
}

// ---------------------------------------------------------------- rule 5

/// `std::sync` types whose blocking semantics bypass the executor.
/// (`Arc`, atomics, `OnceLock`, `mpsc` stay legal — they don't block a
/// worker or spawn threads.)
const RAW_SYNC_TYPES: [&str; 3] = ["Mutex", "RwLock", "Condvar"];

/// Flags OS-thread spawns and blocking `std::sync` primitives outside
/// the executor module. Test code (`#[cfg(test)]` mods, `#[test]` fns)
/// is skipped: stress tests may legitimately race real threads against
/// the runtime.
fn raw_thread(toks: &[Token], scopes: &ScopeMap, out: &mut Vec<RawViolation>) {
    let mut i = 0;
    while i < toks.len() {
        if scopes.in_test[i] {
            i += 1;
            continue;
        }
        // `std :: sync :: Mutex` (or `{…}` use-group containing one).
        if seg(toks, i, "std") && seg(toks, i + 2, "sync") {
            flag_sync_names(toks, i + 4, out);
        }
        // `thread :: spawn` / `thread :: Builder`, with the same
        // std-prefix logic as the wall-clock sleep check: bare `thread`
        // or `std::thread`, but not `other_crate::thread::spawn`.
        if seg(toks, i, "thread") {
            if let Some(t) = toks
                .get(i + 2)
                .filter(|t| t.is_ident("spawn") || t.is_ident("Builder"))
            {
                let prev_sep = i >= 1 && toks[i - 1].kind == TokenKind::PathSep;
                let std_prefix = i >= 2 && prev_sep && toks[i - 2].is_ident("std");
                if !prev_sep || std_prefix {
                    violation(
                        out,
                        RAW_THREAD,
                        t.line,
                        format!(
                            "thread::{} spawns an OS thread the executor cannot see; spawn \
                             through the `Executor` trait (crates/sim/src/exec/) so scheduling, \
                             shutdown and the watchdog cover it",
                            t.text
                        ),
                    );
                }
            }
        }
        i += 1;
    }
}

/// Flags a banned `std::sync` type at `toks[i]`, or inside a `{…}`
/// use-group starting there.
fn flag_sync_names(toks: &[Token], i: usize, out: &mut Vec<RawViolation>) {
    let flag = |t: &Token, out: &mut Vec<RawViolation>| {
        violation(
            out,
            RAW_THREAD,
            t.line,
            format!(
                "std::sync::{} blocks the calling OS thread behind the executor's back; use \
                 pathways_sim::lock::Lock (or channels) so contention is profiled and the \
                 deterministic backend stays serializable",
                t.text
            ),
        );
    };
    match toks.get(i) {
        Some(t) if t.kind == TokenKind::Ident && RAW_SYNC_TYPES.contains(&t.text.as_str()) => {
            flag(t, out)
        }
        Some(t) if t.is_punct('{') => {
            let mut j = i + 1;
            let mut level = 1usize;
            while j < toks.len() && level > 0 {
                match &toks[j].kind {
                    TokenKind::Punct('{') => level += 1,
                    TokenKind::Punct('}') => level -= 1,
                    TokenKind::Ident if RAW_SYNC_TYPES.contains(&toks[j].text.as_str()) => {
                        flag(&toks[j], out)
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        _ => {}
    }
}
