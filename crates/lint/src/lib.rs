//! `pathlint` — workspace-wide determinism & concurrency static
//! analysis for the Pathways reproduction.
//!
//! The simulator's whole experimental story rests on bit-identical
//! replay (golden traces, the chaos harness, every figure); the rules
//! here (see [`rules`]) encode that contract as machine-checked
//! invariants so a stray `std::collections::HashMap` or a lock held
//! across an `.await` fails CI instead of silently skewing a future
//! figure. Self-contained by design: no `syn`, no registry deps — the
//! lexer ([`lexer`]) and brace/scope tracker ([`scope`]) are
//! hand-rolled (see `shims/README.md` for why).
//!
//! Inline suppressions: `// pathlint: allow(<rule>[, <rule>…])` on the
//! offending line, or on a line by itself directly above it. The
//! panic-path rule additionally honors the checked-in allowlist
//! `crates/lint/panic_allowlist.txt` (one `file.rs::fn_name` per
//! line); stale entries fail the run so the list only shrinks.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use report::{RunReport, Status};
pub use rules::{FileCtx, FileKind};

/// One resolved violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
    pub status: Status,
    /// `file.rs::fn` key ([`rules::PANIC_PATH`] only).
    pub allow_key: Option<String>,
}

/// The checked-in panic allowlist.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    entries: BTreeSet<String>,
}

impl Allowlist {
    /// Parses the allowlist format: one `path.rs::fn_name` per line,
    /// `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Allowlist {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect();
        Allowlist { entries }
    }

    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains(key)
    }

    pub fn entries(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(String::as_str)
    }
}

/// Outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileResult {
    pub violations: Vec<Violation>,
    /// Allowlist keys that matched a violation (for staleness checks).
    pub used_allow_keys: BTreeSet<String>,
}

/// Lints one file's source text. Pure — no filesystem access — so the
/// fixture suite can drive it with synthetic [`FileCtx`]s.
pub fn lint_source(ctx: &FileCtx, src: &str, allowlist: &Allowlist) -> FileResult {
    let lexed = lexer::lex(src);
    let scopes = scope::build(&lexed.tokens);
    let raw = rules::check(ctx, &lexed, &scopes);
    let suppressions = collect_suppressions(&lexed.comments);

    let mut out = FileResult::default();
    for v in raw {
        let suppressed = suppressions
            .get(&v.line)
            .is_some_and(|rules| rules.contains(v.rule));
        let allowlisted = v
            .allow_key
            .as_deref()
            .is_some_and(|k| allowlist.contains(k));
        let status = if suppressed {
            Status::Suppressed
        } else if allowlisted {
            Status::Allowlisted
        } else {
            Status::Error
        };
        if status == Status::Allowlisted {
            if let Some(k) = &v.allow_key {
                out.used_allow_keys.insert(k.clone());
            }
        }
        out.violations.push(Violation {
            rule: v.rule,
            path: ctx.rel_path.to_string(),
            line: v.line,
            message: v.message,
            status,
            allow_key: v.allow_key,
        });
    }
    out
}

/// Maps source lines to the rule names suppressed on them. A comment's
/// suppression covers the comment's own line(s) and the line right
/// after it, so both styles work:
///
/// ```text
/// foo.unwrap(); // pathlint: allow(panic-path)
/// // pathlint: allow(panic-path) — justification here
/// foo.unwrap();
/// ```
fn collect_suppressions(comments: &[lexer::Comment]) -> BTreeMap<u32, BTreeSet<&'static str>> {
    let mut map: BTreeMap<u32, BTreeSet<&'static str>> = BTreeMap::new();
    for c in comments {
        for rule in parse_allow(&c.text) {
            for line in c.line..=c.end_line + 1 {
                map.entry(line).or_default().insert(rule);
            }
        }
    }
    map
}

/// Extracts rule names from `… pathlint: allow(a, b) …`. Unknown rule
/// names are ignored (they can never suppress anything).
fn parse_allow(comment: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    let Some(at) = comment.find("pathlint:") else {
        return out;
    };
    let rest = comment[at + "pathlint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return out;
    };
    let Some(end) = rest.find(')') else {
        return out;
    };
    for name in rest[..end].split(',') {
        let name = name.trim();
        if let Some(rule) = rules::ALL_RULES.iter().find(|r| **r == name) {
            out.push(*rule);
        }
    }
    out
}

// ------------------------------------------------------------ workspace

/// Directories under the workspace root that are never linted: shims
/// stand in for third-party crates (their internals are not our
/// contract), fixtures are deliberately-bad snippets, target is build
/// output.
const SKIP_DIRS: [&str; 3] = ["shims", "target", "crates/lint/tests/fixtures"];

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Enumerates every `.rs` file to lint, as workspace-relative
/// `/`-separated paths, in sorted (deterministic) order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let rel = rel_path(root, &path);
        if SKIP_DIRS
            .iter()
            .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
        {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Builds the [`FileCtx`] for a workspace-relative path.
pub fn classify(rel_path: &str) -> FileCtx<'_> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, rest) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        (parts[1], &parts[2..])
    } else {
        ("pathways", &parts[..])
    };
    let kind = match rest.first() {
        Some(&"tests") => FileKind::Tests,
        Some(&"benches") => FileKind::Benches,
        Some(&"examples") => FileKind::Examples,
        _ => FileKind::Src,
    };
    FileCtx {
        rel_path,
        crate_name,
        kind,
    }
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path, allowlist: &Allowlist) -> std::io::Result<RunReport> {
    let mut report = RunReport::default();
    let mut used_keys: BTreeSet<String> = BTreeSet::new();
    for rel in workspace_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let ctx = classify(&rel);
        let mut result = lint_source(&ctx, &src, allowlist);
        report.files_scanned += 1;
        report.violations.append(&mut result.violations);
        used_keys.extend(result.used_allow_keys);
    }
    for entry in allowlist.entries() {
        if !used_keys.contains(entry) {
            report.stale_allowlist.push(entry.to_string());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_allow_extracts_known_rules() {
        assert_eq!(
            parse_allow(" pathlint: allow(panic-path, wall-clock) why: measured"),
            vec![rules::PANIC_PATH, rules::WALL_CLOCK]
        );
        assert!(parse_allow("pathlint: allow(not-a-rule)").is_empty());
        assert!(parse_allow("nothing to see").is_empty());
    }

    #[test]
    fn classify_maps_paths() {
        let c = classify("crates/core/src/store.rs");
        assert_eq!(c.crate_name, "core");
        assert_eq!(c.kind, FileKind::Src);
        let t = classify("crates/net/tests/prop_net.rs");
        assert_eq!(t.kind, FileKind::Tests);
        let root = classify("examples/quickstart.rs");
        assert_eq!(root.crate_name, "pathways");
        assert_eq!(root.kind, FileKind::Examples);
        let bin = classify("crates/bench/src/bin/fig5.rs");
        assert_eq!(bin.crate_name, "bench");
        assert_eq!(bin.kind, FileKind::Src);
    }

    #[test]
    fn allowlist_round_trip() {
        let a = Allowlist::parse("# comment\n\ncrates/core/src/x.rs::f\n");
        assert!(a.contains("crates/core/src/x.rs::f"));
        assert!(!a.contains("other"));
    }
}
