//! A small hand-rolled Rust lexer.
//!
//! `syn` is unavailable offline (the workspace builds with no registry
//! access), so pathlint ships its own lexer. It produces exactly the
//! token shapes the rules need — identifiers, lifetimes, literals,
//! punctuation, `::` — and strips comments into a side table (comments
//! carry `// pathlint: allow(..)` suppressions, so their line numbers
//! matter, but they must never confuse token-sequence matching).
//!
//! Deliberately *not* a full spec lexer: no token trees, no float/int
//! distinction, no shebang/frontmatter handling. It does get the
//! tricky cases right that would otherwise produce phantom matches:
//! raw strings (`r#"…"#` with any hash count), byte and raw-byte
//! strings, char literals vs lifetimes (`'a'` vs `'a`), nested block
//! comments, raw identifiers (`r#fn`), and numeric literals with
//! suffixes/underscores/exponents (so `0..10` is not a float).

/// What a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#async` → `async`).
    Ident,
    /// Lifetime (`'a`, `'static`) — text excludes the leading quote.
    Lifetime,
    /// String / raw-string / byte-string / char literal. Text is the
    /// *content* only; rules never need the quoting.
    Literal,
    /// Numeric literal (text as written).
    Number,
    /// Single punctuation character.
    Punct(char),
    /// The `::` path separator, fused so path matching is one token.
    PathSep,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment stripped out of the token stream (suppression carrier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment *starts* on.
    pub line: u32,
    /// 1-based line the comment *ends* on (same as `line` for `//`).
    pub end_line: u32,
    /// Raw comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the token stream plus the stripped comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Never fails: unterminated constructs consume to EOF,
/// and unrecognized bytes are skipped — a linter must degrade
/// gracefully on code that rustc itself will reject later.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                // Raw identifiers and raw / byte strings all start with
                // an ident char; disambiguate before the generic ident
                // path so `r"…"` is not lexed as ident `r` + string.
                'r' | 'b' if self.is_raw_or_byte_literal() => self.raw_or_byte_literal(),
                _ if is_ident_start(c) => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                '"' => self.string(),
                '\'' => self.lifetime_or_char(),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::PathSep, "::".into(), line);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
        });
    }

    /// Is the cursor at `r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"`,
    /// `br#"` (any hash count)? Plain idents starting with r/b fall
    /// through to [`Self::ident`].
    fn is_raw_or_byte_literal(&self) -> bool {
        let mut i = 1;
        let first = self.peek(0);
        if first == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        }
        // Skip hashes of a raw string.
        let mut j = i;
        while self.peek(j) == Some('#') {
            j += 1;
        }
        match self.peek(j) {
            Some('"') => true,
            // b'x' byte char (no hashes allowed).
            Some('\'') => first == Some('b') && i == 1 && j == 1,
            // r#ident raw identifier: r + exactly one # + ident start.
            Some(c) => first == Some('r') && i == 1 && j == 2 && is_ident_start(c),
            None => false,
        }
    }

    fn raw_or_byte_literal(&mut self) {
        let line = self.line;
        let mut raw = false;
        if self.peek(0) == Some('b') {
            self.bump();
        }
        if self.peek(0) == Some('r') {
            raw = true;
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        match self.peek(0) {
            Some('"') if raw => {
                self.bump();
                // Raw string: ends at `"` followed by `hashes` hashes.
                let mut text = String::new();
                'outer: while let Some(c) = self.bump() {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if self.peek(k) != Some('#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..hashes {
                                self.bump();
                            }
                            break 'outer;
                        }
                    }
                    text.push(c);
                }
                self.push(TokenKind::Literal, text, line);
            }
            Some('"') => {
                // b"…": ordinary escaped string.
                self.string_at(line);
            }
            Some('\'') => {
                // b'x'
                self.bump();
                let mut text = String::new();
                while let Some(c) = self.bump() {
                    if c == '\\' {
                        if let Some(e) = self.bump() {
                            text.push(e);
                        }
                        continue;
                    }
                    if c == '\'' {
                        break;
                    }
                    text.push(c);
                }
                self.push(TokenKind::Literal, text, line);
            }
            _ => {
                // r#ident raw identifier: emit the bare ident so
                // keyword matching sees through the escape.
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokenKind::Ident, text, line);
            }
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.string_at(line);
    }

    fn string_at(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    fn lifetime_or_char(&mut self) {
        let line = self.line;
        self.bump(); // leading quote
        let first = self.peek(0);
        let second = self.peek(1);
        let is_lifetime = match first {
            // `'a`, `'static`, `'_` — but `'a'` is a char literal.
            Some(c) if is_ident_start(c) => second != Some('\''),
            _ => false,
        };
        if is_lifetime {
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            let mut text = String::new();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        if let Some(e) = self.bump() {
                            text.push(e);
                            // `'\u{1F600}'`: consume the braced payload.
                            if e == 'u' && self.peek(0) == Some('{') {
                                while let Some(u) = self.bump() {
                                    if u == '}' {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    '\'' => break,
                    _ => text.push(c),
                }
            }
            self.push(TokenKind::Literal, text, line);
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
                // Exponent sign: `1e-5` / `2E+3`.
                if (c == 'e' || c == 'E')
                    && !text.starts_with("0x")
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    text.push(self.bump().unwrap());
                }
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` is one number; `0..10` and `1.max(2)` are not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_paths_and_punct() {
        let toks = kinds("use std::collections::HashMap;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "use".into()),
                (TokenKind::Ident, "std".into()),
                (TokenKind::PathSep, "::".into()),
                (TokenKind::Ident, "collections".into()),
                (TokenKind::PathSep, "::".into()),
                (TokenKind::Ident, "HashMap".into()),
                (TokenKind::Punct(';'), ";".into()),
            ]
        );
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2, "two 'a lifetimes: {toks:?}");
        let chars = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Literal && (t == "a" || t == "n"))
            .count();
        assert_eq!(chars, 2, "char literals 'a' and '\\n': {toks:?}");
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // A HashMap mention inside a raw string must not tokenize.
        let toks = kinds(r####"let s = r#"std::collections::HashMap"#;"####);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.contains("HashMap")));
    }

    #[test]
    fn raw_string_hash_counts_nest() {
        // r##"…"# …"## — the single-hash close must not end it.
        let src = "r##\"one \"# two\"## HashMap";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Literal, "one \"# two".into()),
                (TokenKind::Ident, "HashMap".into()),
            ]
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"let a = b"x"; let b = br#"y"#; let c = b'z';"##);
        let lits: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lits, vec!["x", "y", "z"]);
    }

    #[test]
    fn raw_identifiers_unescape() {
        let toks = kinds("let r#fn = 1; r#unwrap()");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn comments_stripped_and_recorded() {
        let lexed =
            lex("let x = 1; // pathlint: allow(panic-path)\n/* block\nHashMap */ let y = 2;");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("pathlint: allow"));
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[1].end_line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens[0].is_ident("fn"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("0..10 1.5 1.max(2) 0x1f_u32 1e-5 1_000.5f64");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            nums,
            vec!["0", "10", "1.5", "1", "2", "0x1f_u32", "1e-5", "1_000.5f64"]
        );
        // `.max` survives as punct + ident (method call shape).
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn unterminated_string_consumes_to_eof() {
        let lexed = lex("let s = \"never closed");
        assert_eq!(lexed.tokens.last().unwrap().kind, TokenKind::Literal);
    }
}
