//! Brace/scope tracking over the token stream.
//!
//! For every token index this computes:
//! - the brace depth (`{`/`}` nesting) *before* the token is applied,
//! - whether the token sits inside test-only code (`#[cfg(test)]` mod
//!   or fn, or a `#[test]` fn), and
//! - the innermost enclosing function name (for panic-allowlist keys).
//!
//! The tracker is attribute-aware but deliberately shallow: it pairs a
//! pending `fn name` / `mod name` with the next `{` at statement
//! level, cancelling on `;` (trait method signatures, `mod foo;`).
//! Const-generic brace expressions in signatures are rare enough in
//! this workspace to ignore; the fixture tests pin the cases that
//! matter (nested generics, where-clauses, closures, nested items).

use crate::lexer::{Token, TokenKind};

/// Per-token scope annotations, parallel to the token slice.
#[derive(Debug)]
pub struct ScopeMap {
    /// Brace depth at each token (before processing that token).
    pub depth: Vec<u32>,
    /// True where the token is inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: Vec<bool>,
    /// Innermost enclosing fn name (`None` at item level).
    pub enclosing_fn: Vec<Option<String>>,
}

#[derive(Debug)]
struct OpenScope {
    /// Depth *inside* the scope (depth value of its body tokens).
    body_depth: u32,
    /// `Some(name)` if this scope is a fn body.
    fn_name: Option<String>,
    /// True if this scope starts (or continues) test-only code.
    test: bool,
}

/// Builds the scope map for `tokens`.
pub fn build(tokens: &[Token]) -> ScopeMap {
    let mut depth_v = Vec::with_capacity(tokens.len());
    let mut test_v = Vec::with_capacity(tokens.len());
    let mut fn_v = Vec::with_capacity(tokens.len());

    let mut depth: u32 = 0;
    let mut scopes: Vec<OpenScope> = Vec::new();
    // Attribute marked the *next* item as test-only.
    let mut test_attr = false;
    // A `fn name` seen but whose body `{` has not opened yet.
    let mut pending: Option<String> = None;
    // Paren/bracket nesting inside a pending item's signature, so the
    // `;` in `fn f(x: &[u8; 2])` does not read as an item terminator.
    let mut sig_nest: u32 = 0;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];

        // Record state as seen *at* this token.
        depth_v.push(depth);
        test_v.push(scopes.iter().any(|s| s.test));
        fn_v.push(scopes.iter().rev().find_map(|s| s.fn_name.clone()));

        match &t.kind {
            TokenKind::Punct('#') => {
                // `#[…]` or `#![…]`: scan the bracket group, flag test
                // attributes. (`#` not followed by `[`/`![` is left to
                // the default arm's advance below — not valid Rust.)
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is_punct('[')) {
                    let (end, is_test) = scan_attr(tokens, j);
                    if is_test {
                        test_attr = true;
                    }
                    // Replay the depth/test/fn state for the skipped
                    // attribute tokens so the vectors stay parallel.
                    for _ in (i + 1)..end {
                        depth_v.push(depth);
                        test_v.push(*test_v.last().unwrap());
                        fn_v.push(fn_v.last().unwrap().clone());
                    }
                    i = end;
                    continue;
                }
            }
            TokenKind::Ident if t.text == "fn" => {
                if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    pending = Some(name.text.clone());
                    sig_nest = 0;
                }
            }
            TokenKind::Punct('(') | TokenKind::Punct('[') if pending.is_some() || test_attr => {
                sig_nest += 1;
            }
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                sig_nest = sig_nest.saturating_sub(1);
            }
            TokenKind::Punct(';') if sig_nest == 0 => {
                // `mod foo;` / trait method signature / `#[cfg(test)]
                // struct X;` — the pending item never opens a body
                // here; its attributes die with it.
                pending = None;
                test_attr = false;
            }
            TokenKind::Punct('{') => {
                depth += 1;
                sig_nest = 0;
                let fn_name = pending.take();
                // A test attribute is consumed by the first body it can
                // apply to (fn, mod, impl, struct, …) so it can never
                // leak past the item it annotates.
                let test = test_attr;
                test_attr = false;
                scopes.push(OpenScope {
                    body_depth: depth,
                    fn_name,
                    test,
                });
            }
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while scopes.last().is_some_and(|s| s.body_depth > depth) {
                    scopes.pop();
                }
            }
            _ => {}
        }
        i += 1;
    }

    ScopeMap {
        depth: depth_v,
        in_test: test_v,
        enclosing_fn: fn_v,
    }
}

/// Scans an attribute starting at the `[` token index. Returns the
/// index just past the closing `]` and whether the attribute marks
/// test-only code (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`).
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut level = 0usize;
    let mut i = open;
    let mut idents: Vec<&str> = Vec::new();
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('[') => level += 1,
            TokenKind::Punct(']') => {
                level -= 1;
                if level == 0 {
                    i += 1;
                    break;
                }
            }
            TokenKind::Ident => idents.push(tokens[i].text.as_str()),
            _ => {}
        }
        i += 1;
    }
    let is_test = match idents.first() {
        Some(&"test") => idents.len() == 1,
        Some(&"cfg") => idents.contains(&"test"),
        _ => false,
    };
    (i, is_test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Scope info at the first token matching `ident`.
    fn at(src: &str, ident: &str) -> (u32, bool, Option<String>) {
        let lexed = lex(src);
        let map = build(&lexed.tokens);
        let idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("{ident} not found"));
        (
            map.depth[idx],
            map.in_test[idx],
            map.enclosing_fn[idx].clone(),
        )
    }

    #[test]
    fn tracks_enclosing_fn() {
        let src = "fn outer() { let marker = 1; } fn other() {}";
        let (depth, test, f) = at(src, "marker");
        assert_eq!(depth, 1);
        assert!(!test);
        assert_eq!(f.as_deref(), Some("outer"));
    }

    #[test]
    fn cfg_test_mod_marks_contents() {
        let src = "fn prod() {} #[cfg(test)] mod tests { fn helper() { let marker = 1; } }";
        let (_, test, f) = at(src, "marker");
        assert!(test);
        assert_eq!(f.as_deref(), Some("helper"));
        let (_, prod_test, _) = at(src, "prod");
        assert!(!prod_test);
    }

    #[test]
    fn test_attr_fn_marks_body_only() {
        let src = "#[test] fn a_test() { let inside = 1; } fn prod() { let outside = 2; }";
        assert!(at(src, "inside").1);
        assert!(!at(src, "outside").1);
    }

    #[test]
    fn array_type_semicolons_in_signatures_do_not_cancel_fn() {
        let src = "fn takes_arrays(x: &[u8; 2], y: [u32; 4]) -> [u8; 1] { let marker = 1; }";
        assert_eq!(at(src, "marker").2.as_deref(), Some("takes_arrays"));
    }

    #[test]
    fn mod_decl_without_body_cancels_attr() {
        // `#[cfg(test)] mod integration;` must not poison later items.
        let src = "#[cfg(test)] mod integration; fn prod() { let marker = 1; }";
        assert!(!at(src, "marker").1);
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_fn_pairing() {
        let src = "fn tricky<T: Iterator<Item = Vec<u8>>>(x: T) -> Option<Vec<T>> \
                   where T: Clone { let marker = 1; }";
        let (depth, _, f) = at(src, "marker");
        assert_eq!(depth, 1);
        assert_eq!(f.as_deref(), Some("tricky"));
    }

    #[test]
    fn closures_do_not_shadow_fn_name() {
        let src = "fn host() { let c = |x: u32| { let marker = x; }; }";
        let (depth, _, f) = at(src, "marker");
        assert_eq!(depth, 2);
        assert_eq!(f.as_deref(), Some("host"));
    }

    #[test]
    fn nested_fns_report_innermost() {
        let src = "fn outer() { fn inner() { let marker = 1; } }";
        assert_eq!(at(src, "marker").2.as_deref(), Some("inner"));
    }

    #[test]
    fn struct_literals_and_match_blocks_are_anonymous() {
        let src = "fn f() { let p = Point { x: 1 }; match p { _ => { let marker = 1; } } }";
        let (_, _, f) = at(src, "marker");
        assert_eq!(f.as_deref(), Some("f"));
    }

    #[test]
    fn cfg_any_test_counts_as_test() {
        let src = "#[cfg(any(test, feature = \"x\"))] mod m { let marker = 1; }";
        assert!(at(src, "marker").1);
    }

    #[test]
    fn lifetimes_and_raw_strings_in_signatures() {
        let src = "fn s<'a>(x: &'a str) -> &'a str { let marker = r#\"{ not a brace \"#; x }";
        let (depth, _, f) = at(src, "marker");
        assert_eq!(depth, 1);
        assert_eq!(f.as_deref(), Some("s"));
    }
}
