//! Diagnostics and the machine-readable `LINT_REPORT.json`.
//!
//! Like the bench crate's `BENCH_*.json` writer, the JSON here is
//! hand-rolled (the workspace has no JSON dependency — it builds with
//! no registry access): flat strings/numbers, minimal escape.

use std::fmt::Write as _;

use crate::Violation;

/// How a violation was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Unsuppressed, not allowlisted: fails the build.
    Error,
    /// Covered by an inline `// pathlint: allow(<rule>)`.
    Suppressed,
    /// Covered by a `crates/lint/panic_allowlist.txt` entry.
    Allowlisted,
}

impl Status {
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Error => "error",
            Status::Suppressed => "suppressed",
            Status::Allowlisted => "allowlisted",
        }
    }
}

/// Whole-run result: everything the CI gate and the JSON report need.
#[derive(Debug, Default)]
pub struct RunReport {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched nothing (stale — must be pruned
    /// so the list only ever shrinks toward genuinely unreachable
    /// panics).
    pub stale_allowlist: Vec<String>,
}

impl RunReport {
    pub fn count(&self, status: Status) -> usize {
        self.violations
            .iter()
            .filter(|v| v.status == status)
            .count()
    }

    /// True when the run should fail the build.
    pub fn failed(&self) -> bool {
        self.count(Status::Error) > 0 || !self.stale_allowlist.is_empty()
    }

    /// Human-readable diagnostics, one `path:line: [rule] message` per
    /// violation, errors last so they sit next to the summary in
    /// terminal scrollback.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut sorted: Vec<&Violation> = self.violations.iter().collect();
        sorted.sort_by_key(|v| {
            (
                v.status != Status::Allowlisted,
                v.status != Status::Suppressed,
                v.path.clone(),
                v.line,
            )
        });
        for v in sorted {
            match v.status {
                Status::Error => {
                    let _ = writeln!(
                        out,
                        "error: {}:{}: [{}] {}",
                        v.path, v.line, v.rule, v.message
                    );
                }
                Status::Suppressed | Status::Allowlisted => {
                    let _ = writeln!(
                        out,
                        "note: {}:{}: [{}] {} ({})",
                        v.path,
                        v.line,
                        v.rule,
                        v.message,
                        v.status.as_str()
                    );
                }
            }
        }
        for key in &self.stale_allowlist {
            let _ = writeln!(
                out,
                "error: crates/lint/panic_allowlist.txt: stale entry `{key}` matches nothing — \
                 remove it (the allowlist only ever shrinks)"
            );
        }
        let _ = writeln!(
            out,
            "pathlint: {} files, {} errors, {} allowlisted, {} suppressed, {} stale allowlist entries",
            self.files_scanned,
            self.count(Status::Error),
            self.count(Status::Allowlisted),
            self.count(Status::Suppressed),
            self.stale_allowlist.len(),
        );
        out
    }

    /// Serializes the run as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"tool\": \"pathlint\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            out,
            "  \"summary\": {{\"errors\": {}, \"allowlisted\": {}, \"suppressed\": {}, \
             \"stale_allowlist\": {}}},",
            self.count(Status::Error),
            self.count(Status::Allowlisted),
            self.count(Status::Suppressed),
            self.stale_allowlist.len(),
        );
        out.push_str("  \"stale_allowlist\": [");
        for (i, key) in self.stale_allowlist.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(key));
        }
        out.push_str("],\n");
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"status\": {}, \
                 \"message\": {}}}",
                json_string(v.rule),
                json_string(&v.path),
                v.line,
                json_string(v.status.as_str()),
                json_string(&v.message),
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn failed_on_stale_entries_even_without_errors() {
        let mut r = RunReport::default();
        assert!(!r.failed());
        r.stale_allowlist.push("x::y".into());
        assert!(r.failed());
    }
}
