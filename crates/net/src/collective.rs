//! Analytic cost models for collective operations.
//!
//! TPU collectives execute on the dedicated ICI mesh without host
//! involvement (Appendix A.5). We model their completion time with the
//! standard alpha-beta formulation: a latency term proportional to the
//! number of sequential hops, and a bandwidth term proportional to the
//! data each link must carry. Two algorithms are provided — a 1-D ring
//! and a 2-D torus (rows-then-columns) — the torus being what TPU
//! hardware actually uses and what keeps latency sublinear in device
//! count.

use serde::{Deserialize, Serialize};

use pathways_sim::SimDuration;

use crate::params::Bandwidth;

/// The collective patterns used by the workloads in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Reduce + broadcast: every participant ends with the full sum.
    AllReduce,
    /// Every participant ends with the concatenation of all inputs.
    AllGather,
    /// The reduction is left sharded across participants.
    ReduceScatter,
    /// Every participant sends a distinct shard to every other.
    AllToAll,
}

impl std::fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CollectiveKind::AllReduce => "all-reduce",
            CollectiveKind::AllGather => "all-gather",
            CollectiveKind::ReduceScatter => "reduce-scatter",
            CollectiveKind::AllToAll => "all-to-all",
        };
        f.write_str(s)
    }
}

/// Completion time of a ring all-reduce over `n` participants carrying
/// `bytes` per participant.
///
/// Classic result: `2 (n-1)` steps each moving `bytes / n` and paying one
/// hop latency.
pub fn ring_allreduce(
    n: u32,
    bytes: u64,
    bandwidth: Bandwidth,
    hop_latency: SimDuration,
) -> SimDuration {
    assert!(n > 0, "collective needs at least one participant");
    if n == 1 {
        return SimDuration::ZERO;
    }
    let steps = 2 * (n as u64 - 1);
    let chunk = (bytes as f64 / n as f64).ceil();
    let per_step = hop_latency + SimDuration::from_secs_f64(chunk / bandwidth.bytes_per_sec());
    per_step * steps
}

/// Completion time of a 2-D torus all-reduce on a `rows x cols` mesh
/// carrying `bytes` per participant.
///
/// Reduce-scatter + all-gather along rows, then along columns: the
/// latency term is `2 ((rows-1) + (cols-1))` hops and the bandwidth term
/// approaches `4 bytes / link_bw` (each dimension moves ~`2 bytes`).
pub fn torus_allreduce(
    rows: u32,
    cols: u32,
    bytes: u64,
    bandwidth: Bandwidth,
    hop_latency: SimDuration,
) -> SimDuration {
    assert!(rows > 0 && cols > 0, "torus dimensions must be positive");
    let n = rows as u64 * cols as u64;
    if n == 1 {
        return SimDuration::ZERO;
    }
    let latency_hops = 2 * ((rows as u64 - 1) + (cols as u64 - 1));
    let latency_term = hop_latency * latency_hops;
    // Each of the two dimension passes is ring-optimal within its
    // dimension: 2 * (d-1)/d * bytes; summed over dims this is < 4*bytes.
    let row_frac = 2.0 * (cols as f64 - 1.0) / cols as f64;
    let col_frac = 2.0 * (rows as f64 - 1.0) / rows as f64;
    let bw_bytes = (row_frac + col_frac) * bytes as f64;
    latency_term + SimDuration::from_secs_f64(bw_bytes / bandwidth.bytes_per_sec())
}

/// Completion time of an all-gather on a `rows x cols` torus where each
/// participant contributes `bytes`.
pub fn torus_allgather(
    rows: u32,
    cols: u32,
    bytes: u64,
    bandwidth: Bandwidth,
    hop_latency: SimDuration,
) -> SimDuration {
    // All-gather is half of the all-reduce exchange.
    torus_allreduce(rows, cols, bytes, bandwidth, hop_latency) / 2
}

/// Completion time of a reduce-scatter on a `rows x cols` torus.
pub fn torus_reduce_scatter(
    rows: u32,
    cols: u32,
    bytes: u64,
    bandwidth: Bandwidth,
    hop_latency: SimDuration,
) -> SimDuration {
    torus_allreduce(rows, cols, bytes, bandwidth, hop_latency) / 2
}

/// Completion time of the collective `kind` on a torus.
pub fn torus_collective(
    kind: CollectiveKind,
    rows: u32,
    cols: u32,
    bytes: u64,
    bandwidth: Bandwidth,
    hop_latency: SimDuration,
) -> SimDuration {
    match kind {
        CollectiveKind::AllReduce => torus_allreduce(rows, cols, bytes, bandwidth, hop_latency),
        CollectiveKind::AllGather => torus_allgather(rows, cols, bytes, bandwidth, hop_latency),
        CollectiveKind::ReduceScatter => {
            torus_reduce_scatter(rows, cols, bytes, bandwidth, hop_latency)
        }
        // All-to-all moves n-1 distinct chunks per participant; on a torus
        // the bisection constrains it to roughly the all-reduce cost
        // scaled by sqrt(n)/2. We use a conservative ring bound.
        CollectiveKind::AllToAll => ring_allreduce(rows * cols, bytes, bandwidth, hop_latency),
    }
}

/// Completion time of a DCN all-reduce across `n` hosts (e.g. gradient
/// reduction between islands, §5.3): a ring over the hosts' NICs.
pub fn dcn_allreduce(
    n: u32,
    bytes: u64,
    bandwidth: Bandwidth,
    message_latency: SimDuration,
) -> SimDuration {
    ring_allreduce(n, bytes, bandwidth, message_latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw() -> Bandwidth {
        Bandwidth::from_gbps(100.0)
    }
    fn lat() -> SimDuration {
        SimDuration::from_micros(1)
    }

    #[test]
    fn single_participant_is_free() {
        assert_eq!(ring_allreduce(1, 1 << 20, bw(), lat()), SimDuration::ZERO);
        assert_eq!(
            torus_allreduce(1, 1, 1 << 20, bw(), lat()),
            SimDuration::ZERO
        );
    }

    #[test]
    fn small_allreduce_is_latency_bound() {
        // 4 bytes over an 8x8 torus: bandwidth term is negligible.
        let t = torus_allreduce(8, 8, 4, bw(), lat());
        let hops = 2 * (7 + 7);
        assert!(t >= lat() * hops);
        assert!(t < lat() * (hops + 1));
    }

    #[test]
    fn large_allreduce_is_bandwidth_bound() {
        // 1 GB over a 2x2 torus at 100 GB/s: ~3 * 10ms.
        let t = torus_allreduce(2, 2, 1_000_000_000, bw(), lat());
        let secs = t.as_secs_f64();
        assert!((0.015..0.045).contains(&secs), "got {secs}");
    }

    #[test]
    fn torus_latency_scales_with_mesh_perimeter_not_size() {
        let small = torus_allreduce(8, 8, 4, bw(), lat());
        let large = torus_allreduce(32, 64, 4, bw(), lat());
        // 64x more devices but only ~6.6x more latency.
        let ratio = large.as_secs_f64() / small.as_secs_f64();
        assert!(ratio < 8.0, "ratio {ratio}");
        // Ring latency over the same 2048 devices would be ~146x.
        let ring = ring_allreduce(2048, 4, bw(), lat());
        assert!(ring > large * 10);
    }

    #[test]
    fn allgather_is_half_allreduce() {
        let ar = torus_allreduce(4, 4, 1 << 20, bw(), lat());
        let ag = torus_allgather(4, 4, 1 << 20, bw(), lat());
        assert_eq!(ag, ar / 2);
    }

    #[test]
    fn collective_kind_dispatch() {
        for kind in [
            CollectiveKind::AllReduce,
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
            CollectiveKind::AllToAll,
        ] {
            let t = torus_collective(kind, 4, 4, 1024, bw(), lat());
            assert!(!t.is_zero(), "{kind} cost should be positive");
        }
    }

    #[test]
    fn allreduce_monotone_in_bytes_and_participants() {
        let t1 = torus_allreduce(4, 4, 1 << 10, bw(), lat());
        let t2 = torus_allreduce(4, 4, 1 << 20, bw(), lat());
        assert!(t2 > t1);
        let t3 = torus_allreduce(8, 8, 1 << 10, bw(), lat());
        assert!(t3 > t1);
    }
}
