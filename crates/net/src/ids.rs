//! Identifiers for cluster entities.
//!
//! All ids are newtypes over dense indices ([C-NEWTYPE]): an `IslandId`
//! can never be confused with a `HostId` at a call site, and each id
//! indexes directly into the vectors held by
//! [`Topology`](crate::Topology).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Dense index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// One island: a set of hosts whose devices share a private
    /// high-bandwidth interconnect (a TPU pod or pod slice).
    IslandId,
    "island"
);
define_id!(
    /// One host machine (CPU, DRAM, NIC) with locally attached devices.
    HostId,
    "host"
);
define_id!(
    /// One accelerator device (a simulated TPU core), globally numbered.
    DeviceId,
    "dev"
);
define_id!(
    /// One Pathways client process.
    ClientId,
    "client"
);

/// Position of a device in its island's 2-D ICI torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TorusCoord {
    /// Row within the island mesh.
    pub row: u32,
    /// Column within the island mesh.
    pub col: u32,
}

impl fmt::Display for TorusCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

impl TorusCoord {
    /// Wrap-around (torus) hop distance to `other` in a mesh of
    /// `rows x cols`.
    pub fn torus_distance(self, other: TorusCoord, rows: u32, cols: u32) -> u32 {
        let dr = self.row.abs_diff(other.row);
        let dc = self.col.abs_diff(other.col);
        dr.min(rows - dr) + dc.min(cols - dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(IslandId(2).to_string(), "island2");
        assert_eq!(HostId(11).to_string(), "host11");
        assert_eq!(DeviceId(7).to_string(), "dev7");
        assert_eq!(ClientId(0).to_string(), "client0");
    }

    #[test]
    fn torus_distance_wraps() {
        let a = TorusCoord { row: 0, col: 0 };
        let b = TorusCoord { row: 3, col: 3 };
        // In a 4x4 torus, (0,0)->(3,3) is 1 hop down + 1 hop left.
        assert_eq!(a.torus_distance(b, 4, 4), 2);
        // In an 8x8 torus it is 3+3.
        assert_eq!(a.torus_distance(b, 8, 8), 6);
        // Distance is symmetric.
        assert_eq!(b.torus_distance(a, 8, 8), 6);
    }

    #[test]
    fn ids_index_densely() {
        assert_eq!(DeviceId(5).index(), 5);
        assert_eq!(HostId::from(3u32), HostId(3));
    }
}
