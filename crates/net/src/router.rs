//! Typed host-to-host DCN messaging.
//!
//! A [`Router`] gives every host an inbox and delivers typed messages
//! with the fabric's DCN cost model. This is the transport the PLAQUE
//! replacement (crate `pathways-plaque`) and the single-controller
//! control planes are built on.

use pathways_sim::hash::FxHashMap;
use pathways_sim::Lock;
use std::fmt;
use std::sync::Arc;

use pathways_sim::channel::{self, Receiver, Sender};

use crate::fabric::Fabric;
use crate::ids::HostId;

/// A delivered message with its source host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending host.
    pub src: HostId,
    /// Payload.
    pub msg: M,
}

struct RouterInner<M> {
    fabric: Fabric,
    inboxes: Lock<FxHashMap<HostId, Sender<Envelope<M>>>>,
}

/// Typed DCN message router. Cheaply cloneable.
pub struct Router<M> {
    inner: Arc<RouterInner<M>>,
}

impl<M> Clone for Router<M> {
    fn clone(&self) -> Self {
        Router {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M> fmt::Debug for Router<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Router")
            .field("registered", &self.inner.inboxes.lock().len())
            .finish()
    }
}

impl<M: Send + 'static> Router<M> {
    /// Creates a router over `fabric`.
    pub fn new(fabric: Fabric) -> Self {
        Router {
            inner: Arc::new(RouterInner {
                fabric,
                inboxes: Lock::new(FxHashMap::default()),
            }),
        }
    }

    /// Registers `host` and returns its inbox.
    ///
    /// # Panics
    ///
    /// Panics if the host is already registered.
    pub fn register(&self, host: HostId) -> Receiver<Envelope<M>> {
        let (tx, rx) = channel::channel();
        let prev = self.inner.inboxes.lock().insert(host, tx);
        assert!(prev.is_none(), "{host} registered twice");
        rx
    }

    /// Sends `msg` of simulated size `bytes` from `src` to `dst`,
    /// spawning the delivery in the background (asynchronous send, like
    /// an RPC with no reply). Messages between a pair of hosts are
    /// delivered in order because the sender NIC is FIFO.
    ///
    /// # Panics
    ///
    /// Panics if `dst` was never registered.
    pub fn send(&self, src: HostId, dst: HostId, msg: M, bytes: u64) {
        assert!(
            self.inner.inboxes.lock().contains_key(&dst),
            "send to unregistered {dst}"
        );
        let inner = Arc::clone(&self.inner);
        let handle = self.inner.fabric.handle().clone();
        handle
            .clone()
            .spawn(format!("dcn:{src}->{dst}"), async move {
                inner.fabric.dcn_send(src, dst, bytes).await;
                // Checked at delivery time so a link that dies while the
                // message is on the wire also loses it.
                if !inner.fabric.link_up(src, dst) {
                    return;
                }
                let tx = inner
                    .inboxes
                    .lock()
                    .get(&dst)
                    .expect("inbox disappeared")
                    .clone();
                // Receiver may legitimately have shut down (host failure).
                let _ = tx.send(Envelope { src, msg });
            });
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NetworkParams;
    use crate::topology::ClusterSpec;
    use pathways_sim::{Sim, SimDuration};
    use std::sync::Arc;

    fn setup(sim: &Sim) -> Router<String> {
        let fabric = Fabric::new(
            sim.handle(),
            Arc::new(ClusterSpec::config_b(4).build()),
            NetworkParams::tpu_cluster(),
        );
        Router::new(fabric)
    }

    #[test]
    fn delivers_with_dcn_latency() {
        let mut sim = Sim::new(0);
        let router = setup(&sim);
        let mut inbox = router.register(HostId(1));
        router.register(HostId(0));
        router.send(HostId(0), HostId(1), "hello".to_string(), 64);
        let h = sim.handle();
        let recv = sim.spawn("recv", async move {
            let env = inbox.recv().await.unwrap();
            (env.src, env.msg, h.now())
        });
        sim.run_to_quiescence();
        let (src, msg, at) = recv.try_take().unwrap();
        assert_eq!(src, HostId(0));
        assert_eq!(msg, "hello");
        assert!(at.as_nanos() >= NetworkParams::tpu_cluster().dcn_latency.as_nanos());
    }

    #[test]
    fn pairwise_ordering_is_preserved() {
        let mut sim = Sim::new(0);
        let router = setup(&sim);
        let mut inbox = router.register(HostId(1));
        router.register(HostId(0));
        for i in 0..10 {
            router.send(HostId(0), HostId(1), format!("m{i}"), 1_000);
        }
        let recv = sim.spawn("recv", async move {
            let mut got = Vec::new();
            for _ in 0..10 {
                got.push(inbox.recv().await.unwrap().msg);
            }
            got
        });
        sim.run_to_quiescence();
        let got = recv.try_take().unwrap();
        let want: Vec<String> = (0..10).map(|i| format!("m{i}")).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn send_to_dead_receiver_is_dropped_silently() {
        let mut sim = Sim::new(0);
        let router = setup(&sim);
        let inbox = router.register(HostId(1));
        router.register(HostId(0));
        drop(inbox); // host 1 "fails"
        router.send(HostId(0), HostId(1), "lost".into(), 8);
        assert!(sim.run().is_quiescent());
    }

    #[test]
    fn messages_over_dead_links_are_dropped() {
        let mut sim = Sim::new(0);
        let router = setup(&sim);
        let mut in1 = router.register(HostId(1));
        let mut in2 = router.register(HostId(2));
        router.register(HostId(0));
        router.fabric().fail_host(HostId(1));
        router.fabric().sever_link(HostId(0), HostId(2));
        router.send(HostId(0), HostId(1), "to-dead-host".into(), 8);
        router.send(HostId(0), HostId(2), "over-severed-link".into(), 8);
        assert!(sim.run().is_quiescent());
        use pathways_sim::channel::TryRecvError;
        assert_eq!(in1.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(in2.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn link_dying_mid_flight_loses_the_message() {
        let mut sim = Sim::new(0);
        let router = setup(&sim);
        let mut inbox = router.register(HostId(1));
        router.register(HostId(0));
        // Sent while the link is up; the fault fires before the DCN
        // latency elapses, so delivery finds the link down.
        router.send(HostId(0), HostId(1), "in-flight".to_string(), 1 << 20);
        let fabric = router.fabric().clone();
        sim.spawn("fault", async move {
            fabric.sever_link(HostId(0), HostId(1));
        });
        assert!(sim.run().is_quiescent());
        assert!(inbox.try_recv().is_err());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let sim = Sim::new(0);
        let router = setup(&sim);
        let _a = router.register(HostId(0));
        let _b = router.register(HostId(0));
    }

    #[test]
    fn concurrent_sends_from_one_host_serialize_on_nic() {
        let mut sim = Sim::new(0);
        let router = setup(&sim);
        let mut in1 = router.register(HostId(1));
        let mut in2 = router.register(HostId(2));
        router.register(HostId(0));
        router.send(HostId(0), HostId(1), "a".into(), 0);
        router.send(HostId(0), HostId(2), "b".into(), 0);
        let h = sim.handle();
        let t1 = sim.spawn("r1", async move {
            in1.recv().await.unwrap();
            h.now()
        });
        let h2 = sim.handle();
        let t2 = sim.spawn("r2", async move {
            in2.recv().await.unwrap();
            h2.now()
        });
        sim.run_to_quiescence();
        let p = NetworkParams::tpu_cluster();
        let d1 = t1.try_take().unwrap();
        let d2 = t2.try_take().unwrap();
        // Second message waits for the first's NIC occupancy.
        assert_eq!(
            d2.duration_since(d1),
            SimDuration::from_nanos(p.dcn_send_overhead.as_nanos())
        );
    }
}
