//! # pathways-net
//!
//! Cluster topology and interconnect models for the Pathways
//! reproduction: islands of hosts with locally attached accelerator
//! devices, joined by three interconnects with very different
//! characteristics (§2 and Appendix A of the paper):
//!
//! * **PCIe** — host to local device; low latency, the multi-controller
//!   dispatch path;
//! * **ICI** — the per-island device mesh; high bandwidth, used by
//!   collectives and inter-device transfers without host involvement;
//! * **DCN** — the datacenter network between hosts; roughly an order of
//!   magnitude slower than PCIe, the single-controller dispatch path.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use pathways_net::{ClusterSpec, Fabric, HostId, NetworkParams};
//! use pathways_sim::Sim;
//!
//! let mut sim = Sim::new(0);
//! let topo = Arc::new(ClusterSpec::config_b(4).build());
//! let fabric = Fabric::new(sim.handle(), topo, NetworkParams::tpu_cluster());
//! sim.spawn("xfer", async move {
//!     fabric.dcn_send(HostId(0), HostId(3), 1 << 20).await;
//! });
//! sim.run_to_quiescence();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collective;
mod fabric;
mod ids;
mod link;
mod params;
pub mod router;
mod topology;

pub use collective::CollectiveKind;
pub use fabric::Fabric;
pub use ids::{ClientId, DeviceId, HostId, IslandId, TorusCoord};
pub use link::FifoLink;
pub use params::{Bandwidth, NetworkParams};
pub use pathways_sim::hash::{FxHashMap, FxHashSet};
pub use router::{Envelope, Router};
pub use topology::{ClusterSpec, IslandSpec, Topology};
