//! The cluster communication fabric: per-host DCN NICs, per-host PCIe
//! links, and per-device ICI egress ports, assembled over a
//! [`Topology`].
//!
//! A [`Fabric`] is cheaply cloneable and is the single object simulation
//! tasks use to move bytes. Contention is modelled where the paper's
//! arguments need it: every host has one DCN NIC (so coordinator fan-out
//! serializes), one PCIe queue per host (so enqueues from one host
//! serialize), and one ICI egress port per device.

use pathways_sim::hash::FxHashSet;
use pathways_sim::Lock;
use std::fmt;
use std::sync::Arc;

use pathways_sim::{SimDuration, SimHandle};

use crate::collective::{torus_collective, CollectiveKind};
use crate::ids::{DeviceId, HostId};
use crate::link::FifoLink;
use crate::params::NetworkParams;
use crate::topology::Topology;

struct FabricInner {
    topo: Arc<Topology>,
    params: NetworkParams,
    handle: SimHandle,
    dcn_nics: Vec<FifoLink>,
    pcie: Vec<FifoLink>,
    ici_egress: Vec<FifoLink>,
    /// Failed hosts and severed host pairs (fault injection). Messages
    /// whose delivery crosses a dead endpoint or a severed pair are
    /// dropped at delivery time — exactly what a crashed NIC does.
    faults: Lock<FabricFaults>,
}

#[derive(Default)]
struct FabricFaults {
    dead_hosts: FxHashSet<HostId>,
    /// Severed pairs, stored with the smaller host first.
    severed: FxHashSet<(HostId, HostId)>,
}

fn pair_key(a: HostId, b: HostId) -> (HostId, HostId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

/// Handle to the cluster's communication resources.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl fmt::Debug for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fabric")
            .field("hosts", &self.inner.topo.num_hosts())
            .field("devices", &self.inner.topo.num_devices())
            .finish()
    }
}

impl Fabric {
    /// Builds the fabric for `topo` with the given parameters.
    pub fn new(handle: SimHandle, topo: Arc<Topology>, params: NetworkParams) -> Self {
        let dcn_nics = (0..topo.num_hosts())
            .map(|_| {
                FifoLink::new(
                    params.dcn_latency,
                    params.dcn_bandwidth,
                    params.dcn_send_overhead,
                )
            })
            .collect();
        let pcie = (0..topo.num_hosts())
            .map(|_| {
                FifoLink::new(
                    params.pcie_latency,
                    params.pcie_bandwidth,
                    params.enqueue_cpu_overhead,
                )
            })
            .collect();
        let ici_egress = (0..topo.num_devices())
            .map(|_| {
                FifoLink::new(
                    params.ici_hop_latency,
                    params.ici_bandwidth,
                    SimDuration::ZERO,
                )
            })
            .collect();
        Fabric {
            inner: Arc::new(FabricInner {
                topo,
                params,
                handle,
                dcn_nics,
                pcie,
                ici_egress,
                faults: Lock::named("net.fabric.faults", FabricFaults::default()),
            }),
        }
    }

    /// Marks `host`'s NIC dead: all DCN traffic to or from it is dropped
    /// from now on (in-flight messages are dropped at delivery time).
    ///
    /// This is the *wire-level* half of a host failure. Runtimes layered
    /// on the fabric keep their own failure registry for error
    /// propagation (which runs to fail, what to tell clients) — inject
    /// faults through that layer (e.g. the Pathways runtime's fault
    /// injector) rather than calling this directly, or messages will be
    /// dropped without anyone being told why.
    pub fn fail_host(&self, host: HostId) {
        self.inner.faults.lock().dead_hosts.insert(host);
    }

    /// Severs the DCN link between `a` and `b` in both directions. Same
    /// caveat as [`Fabric::fail_host`]: wire-level only; inject through
    /// the runtime's fault layer so error propagation stays in sync.
    pub fn sever_link(&self, a: HostId, b: HostId) {
        self.inner.faults.lock().severed.insert(pair_key(a, b));
    }

    /// True if DCN traffic can still flow between `src` and `dst`: both
    /// endpoints alive and the pair not severed. Loopback from a live
    /// host is always up.
    pub fn link_up(&self, src: HostId, dst: HostId) -> bool {
        let faults = self.inner.faults.lock();
        if faults.dead_hosts.contains(&src) || faults.dead_hosts.contains(&dst) {
            return false;
        }
        src == dst || !faults.severed.contains(&pair_key(src, dst))
    }

    /// True if `host`'s NIC has been failed.
    pub fn host_failed(&self, host: HostId) -> bool {
        self.inner.faults.lock().dead_hosts.contains(&host)
    }

    /// The topology this fabric connects.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.inner.topo
    }

    /// The parameters the fabric was built with.
    pub fn params(&self) -> &NetworkParams {
        &self.inner.params
    }

    /// The simulation handle the fabric sleeps on.
    pub fn handle(&self) -> &SimHandle {
        &self.inner.handle
    }

    /// Sends `bytes` from `src` to `dst` over the DCN; resolves at
    /// delivery. Same-host sends skip the NIC (loopback).
    pub async fn dcn_send(&self, src: HostId, dst: HostId, bytes: u64) {
        if src == dst {
            self.inner.handle.yield_now().await;
            return;
        }
        let nic = &self.inner.dcn_nics[src.index()];
        nic.transmit(&self.inner.handle, bytes).await;
    }

    /// Occupies `host`'s CPU/PCIe queue for one computation enqueue and
    /// pays the PCIe latency; models the multi-controller dispatch path
    /// (Figure 1a).
    pub async fn pcie_enqueue(&self, host: HostId) {
        let link = &self.inner.pcie[host.index()];
        link.transmit(&self.inner.handle, 0).await;
    }

    /// Moves `bytes` between host DRAM and a local device's HBM.
    ///
    /// # Panics
    ///
    /// Panics if `device` is not attached to `host`.
    pub async fn pcie_transfer(&self, host: HostId, device: DeviceId, bytes: u64) {
        assert_eq!(
            self.inner.topo.host_of_device(device),
            host,
            "{device} is not attached to {host}"
        );
        let link = &self.inner.pcie[host.index()];
        link.transmit(&self.inner.handle, bytes).await;
    }

    /// Point-to-point ICI transfer between two devices in one island;
    /// resolves at delivery.
    ///
    /// # Panics
    ///
    /// Panics if the devices are in different islands.
    pub async fn ici_transfer(&self, src: DeviceId, dst: DeviceId, bytes: u64) {
        if src == dst {
            self.inner.handle.yield_now().await;
            return;
        }
        let hops = self.inner.topo.ici_hops(src, dst).max(1);
        let egress = &self.inner.ici_egress[src.index()];
        {
            // Occupy the egress port for serialization.
            egress.occupy(&self.inner.handle, bytes).await;
        }
        // Then pay per-hop propagation.
        self.inner
            .handle
            .sleep(self.inner.params.ici_hop_latency * hops as u64)
            .await;
    }

    /// Duration of an ICI collective over `participants` devices of one
    /// island carrying `bytes` per participant. Pure cost lookup — the
    /// caller (the simulated device) sleeps for this long.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty or spans islands.
    pub fn ici_collective_time(
        &self,
        kind: CollectiveKind,
        participants: &[DeviceId],
        bytes: u64,
    ) -> SimDuration {
        assert!(!participants.is_empty(), "collective needs participants");
        let island = self.inner.topo.island_of_device(participants[0]);
        for d in participants {
            assert_eq!(
                self.inner.topo.island_of_device(*d),
                island,
                "collective spans islands; route via DCN instead"
            );
        }
        // Participants occupy a sub-mesh; approximate it with the
        // squarest factorization of the participant count.
        let n = participants.len() as u32;
        let (rows, cols) = sub_mesh_shape(n);
        torus_collective(
            kind,
            rows,
            cols,
            bytes,
            self.inner.params.ici_bandwidth,
            self.inner.params.ici_hop_latency,
        )
    }

    /// DCN round-trip estimate used by control planes for batching
    /// decisions.
    pub fn dcn_rtt(&self) -> SimDuration {
        self.inner.params.dcn_latency * 2
    }
}

fn sub_mesh_shape(n: u32) -> (u32, u32) {
    let mut best = (1, n);
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            best = (r, n / r);
        }
        r += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterSpec;
    use pathways_sim::Sim;

    fn fabric(sim: &Sim, spec: ClusterSpec) -> Fabric {
        Fabric::new(
            sim.handle(),
            Arc::new(spec.build()),
            NetworkParams::tpu_cluster(),
        )
    }

    #[test]
    fn dcn_send_pays_latency_and_overhead() {
        let mut sim = Sim::new(0);
        let f = fabric(&sim, ClusterSpec::config_b(4));
        let h = sim.handle();
        sim.spawn("send", async move {
            f.dcn_send(HostId(0), HostId(1), 1_000).await;
            h.now().as_nanos()
        });
        let end = sim.run_to_quiescence().as_nanos();
        let p = NetworkParams::tpu_cluster();
        let expect = p.dcn_send_overhead.as_nanos()
            + p.dcn_bandwidth.transfer_time(1_000).as_nanos()
            + p.dcn_latency.as_nanos();
        assert_eq!(end, expect);
    }

    #[test]
    fn fanout_from_one_nic_serializes() {
        let mut sim = Sim::new(0);
        let f = fabric(&sim, ClusterSpec::config_b(16));
        for dst in 1..16u32 {
            let f = f.clone();
            sim.spawn(format!("send{dst}"), async move {
                f.dcn_send(HostId(0), HostId(dst), 0).await;
            });
        }
        let end = sim.run_to_quiescence();
        let p = NetworkParams::tpu_cluster();
        // 15 messages serialized on host0's NIC then one latency.
        let expect = p.dcn_send_overhead * 15 + p.dcn_latency;
        assert_eq!(end.as_nanos(), expect.as_nanos());
    }

    #[test]
    fn loopback_is_free() {
        let mut sim = Sim::new(0);
        let f = fabric(&sim, ClusterSpec::config_b(2));
        sim.spawn("lo", async move {
            f.dcn_send(HostId(0), HostId(0), 1 << 30).await;
        });
        assert_eq!(sim.run_to_quiescence().as_nanos(), 0);
    }

    #[test]
    fn ici_transfer_scales_with_hops() {
        let mut sim = Sim::new(0);
        let f = fabric(&sim, ClusterSpec::config_b(8)); // 8x8 torus
        let f2 = f.clone();
        let near = sim.spawn("near", async move {
            f2.ici_transfer(DeviceId(0), DeviceId(1), 0).await;
            f2.handle().now().as_nanos()
        });
        sim.run_to_quiescence();
        let near_t = near.try_take().unwrap();

        let mut sim = Sim::new(0);
        let f = fabric(&sim, ClusterSpec::config_b(8));
        let far = sim.spawn("far", async move {
            // (0,0) -> (4,4): 8 hops on the 8x8 torus.
            f.ici_transfer(DeviceId(0), DeviceId(36), 0).await;
            f.handle().now().as_nanos()
        });
        sim.run_to_quiescence();
        assert_eq!(far.try_take().unwrap(), near_t * 8);
    }

    #[test]
    fn pcie_enqueues_serialize_per_host() {
        let mut sim = Sim::new(0);
        let f = fabric(&sim, ClusterSpec::config_b(2));
        for i in 0..4 {
            let f = f.clone();
            sim.spawn(format!("e{i}"), async move {
                f.pcie_enqueue(HostId(0)).await;
            });
        }
        let p = NetworkParams::tpu_cluster();
        let end = sim.run_to_quiescence();
        let expect = p.enqueue_cpu_overhead * 4 + p.pcie_latency;
        assert_eq!(end.as_nanos(), expect.as_nanos());
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn pcie_transfer_checks_attachment() {
        let mut sim = Sim::new(0);
        let f = fabric(&sim, ClusterSpec::config_b(2));
        sim.spawn("bad", async move {
            f.pcie_transfer(HostId(0), DeviceId(15), 10).await;
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn collective_time_grows_with_scale() {
        let sim = Sim::new(0);
        let f = fabric(&sim, ClusterSpec::config_a(512));
        let topo = f.topology().clone();
        let all: Vec<DeviceId> = topo.devices().collect();
        let few: Vec<DeviceId> = all.iter().copied().take(8).collect();
        let t_few = f.ici_collective_time(CollectiveKind::AllReduce, &few, 4);
        let t_all = f.ici_collective_time(CollectiveKind::AllReduce, &all, 4);
        assert!(t_all > t_few);
    }

    #[test]
    fn link_state_tracks_failures_and_severs() {
        let sim = Sim::new(0);
        let f = fabric(&sim, ClusterSpec::config_b(4));
        assert!(f.link_up(HostId(0), HostId(1)));
        f.sever_link(HostId(1), HostId(0));
        assert!(!f.link_up(HostId(0), HostId(1)), "severs are symmetric");
        assert!(!f.link_up(HostId(1), HostId(0)));
        assert!(f.link_up(HostId(0), HostId(2)), "other pairs unaffected");
        f.fail_host(HostId(2));
        assert!(f.host_failed(HostId(2)));
        assert!(!f.link_up(HostId(0), HostId(2)));
        assert!(!f.link_up(HostId(2), HostId(3)));
        assert!(!f.link_up(HostId(2), HostId(2)), "dead host loopback down");
        assert!(f.link_up(HostId(3), HostId(3)), "live loopback up");
    }

    #[test]
    #[should_panic(expected = "spans islands")]
    fn collective_across_islands_rejected() {
        let sim = Sim::new(0);
        let f = fabric(&sim, ClusterSpec::config_c());
        let _ = f.ici_collective_time(CollectiveKind::AllReduce, &[DeviceId(0), DeviceId(40)], 4);
    }
}
