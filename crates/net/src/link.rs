//! A FIFO store-and-forward link model.
//!
//! Transfers occupy the link exclusively for their serialization time
//! (`bytes / bandwidth` plus a fixed per-message occupancy), then incur a
//! propagation latency *after* releasing the link, so back-to-back
//! messages pipeline: the wire can carry message `k+1` while message `k`
//! is still in flight. This is the standard LogP-style model and is what
//! makes high-fanout sends from one NIC serialize — the effect behind the
//! paper's single-controller dispatch overheads (Figures 5 and 6).

use std::fmt;

use pathways_sim::sync::Semaphore;
use pathways_sim::{SimDuration, SimHandle};

use crate::params::Bandwidth;

/// An exclusive FIFO link with bandwidth, per-message occupancy and
/// propagation latency.
#[derive(Clone)]
pub struct FifoLink {
    gate: Semaphore,
    latency: SimDuration,
    bandwidth: Bandwidth,
    per_message: SimDuration,
}

impl fmt::Debug for FifoLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FifoLink")
            .field("latency", &self.latency)
            .field("bandwidth_Bps", &self.bandwidth.bytes_per_sec())
            .field("per_message", &self.per_message)
            .finish()
    }
}

impl FifoLink {
    /// Creates a link.
    pub fn new(latency: SimDuration, bandwidth: Bandwidth, per_message: SimDuration) -> Self {
        FifoLink {
            gate: Semaphore::new(1),
            latency,
            bandwidth,
            per_message,
        }
    }

    /// Propagation latency of the link.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Time the link is occupied by a message of `bytes`.
    pub fn occupancy(&self, bytes: u64) -> SimDuration {
        self.per_message + self.bandwidth.transfer_time(bytes)
    }

    /// Transmits `bytes`; resolves when the last byte arrives at the far
    /// end. FIFO-fair under contention.
    pub async fn transmit(&self, handle: &SimHandle, bytes: u64) {
        {
            let _permit = self.gate.acquire(1).await;
            handle.sleep(self.occupancy(bytes)).await;
        }
        handle.sleep(self.latency).await;
    }

    /// Occupies the link without the trailing propagation delay; used
    /// when the caller only needs to model sender-side cost (e.g. a CPU
    /// enqueueing work over PCIe and immediately continuing).
    pub async fn occupy(&self, handle: &SimHandle, bytes: u64) {
        let _permit = self.gate.acquire(1).await;
        handle.sleep(self.occupancy(bytes)).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Bandwidth;
    use pathways_sim::Sim;

    fn test_link() -> FifoLink {
        // 1 GB/s, 10us latency, 1us per message.
        FifoLink::new(
            SimDuration::from_micros(10),
            Bandwidth::from_gbps(1.0),
            SimDuration::from_micros(1),
        )
    }

    #[test]
    fn single_transfer_time_is_occupancy_plus_latency() {
        let mut sim = Sim::new(0);
        let link = test_link();
        let h = sim.handle();
        sim.spawn("t", async move {
            // 1000 bytes at 1 GB/s = 1us serialization.
            link.transmit(&h, 1_000).await;
        });
        // 1us per-message + 1us serialize + 10us latency.
        assert_eq!(sim.run_to_quiescence().as_nanos(), 12_000);
    }

    #[test]
    fn concurrent_transfers_serialize_but_pipeline_latency() {
        let mut sim = Sim::new(0);
        let link = test_link();
        let mut ends = Vec::new();
        for i in 0..3 {
            let link = link.clone();
            let h = sim.handle();
            ends.push(sim.spawn(format!("t{i}"), async move {
                link.transmit(&h, 1_000).await;
                h.now().as_nanos()
            }));
        }
        sim.run_to_quiescence();
        let ends: Vec<u64> = ends.iter().map(|e| e.try_take().unwrap()).collect();
        // Message k occupies [2k, 2k+2)us then lands at 2k+12us.
        assert_eq!(ends, vec![12_000, 14_000, 16_000]);
    }

    #[test]
    fn occupy_skips_propagation() {
        let mut sim = Sim::new(0);
        let link = test_link();
        let h = sim.handle();
        sim.spawn("t", async move {
            link.occupy(&h, 1_000).await;
        });
        assert_eq!(sim.run_to_quiescence().as_nanos(), 2_000);
    }
}
