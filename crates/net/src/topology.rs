//! Static cluster topology: islands of hosts with locally attached
//! devices, matching Figure 3 of the paper.
//!
//! The evaluation uses three configurations (§5):
//!
//! * **(A)** 4 TPUs/host, up to 512 hosts (2048 TPUs) in one island;
//! * **(B)** 8 TPUs/host, up to 64 hosts (512 TPUs) in one island;
//! * **(C)** four islands of 4 hosts × 8 TPUs (32 TPUs each).
//!
//! Constructors for all three are provided.

use pathways_sim::hash::{FxHashMap, FxHashSet};
use pathways_sim::Lock;

use serde::{Deserialize, Serialize};

use crate::ids::{DeviceId, HostId, IslandId, TorusCoord};

/// Specification of one island.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IslandSpec {
    /// Number of hosts in the island.
    pub hosts: u32,
    /// Devices attached to each host.
    pub devices_per_host: u32,
}

impl IslandSpec {
    /// Total devices in the island.
    pub fn devices(&self) -> u32 {
        self.hosts * self.devices_per_host
    }
}

/// Specification of a whole cluster (one entry per island).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Islands, in id order.
    pub islands: Vec<IslandSpec>,
}

impl ClusterSpec {
    /// A single-island cluster.
    pub fn single_island(hosts: u32, devices_per_host: u32) -> Self {
        ClusterSpec {
            islands: vec![IslandSpec {
                hosts,
                devices_per_host,
            }],
        }
    }

    /// Paper configuration (A): 4 TPUs per host, one island.
    pub fn config_a(hosts: u32) -> Self {
        Self::single_island(hosts, 4)
    }

    /// Paper configuration (B): 8 TPUs per host, one island.
    pub fn config_b(hosts: u32) -> Self {
        Self::single_island(hosts, 8)
    }

    /// Paper configuration (C): four islands of 4 hosts x 8 TPUs.
    pub fn config_c() -> Self {
        ClusterSpec {
            islands: vec![
                IslandSpec {
                    hosts: 4,
                    devices_per_host: 8,
                };
                4
            ],
        }
    }

    /// `n` identical islands.
    pub fn islands_of(n: u32, hosts: u32, devices_per_host: u32) -> Self {
        ClusterSpec {
            islands: vec![
                IslandSpec {
                    hosts,
                    devices_per_host,
                };
                n as usize
            ],
        }
    }

    /// Builds the dense topology tables.
    pub fn build(&self) -> Topology {
        Topology::new(self)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct IslandInfo {
    first_host: u32,
    hosts: u32,
    devices_per_host: u32,
    first_device: u32,
    torus_rows: u32,
    torus_cols: u32,
}

/// Immutable lookup tables for a built cluster.
///
/// # Examples
///
/// ```
/// use pathways_net::{ClusterSpec, DeviceId, HostId};
///
/// let topo = ClusterSpec::config_b(4).build();
/// assert_eq!(topo.num_devices(), 32);
/// assert_eq!(topo.host_of_device(DeviceId(9)), HostId(1));
/// assert_eq!(topo.devices_of_host(HostId(0)).len(), 8);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    spec: ClusterSpec,
    islands: Vec<IslandInfo>,
    num_hosts: u32,
    num_devices: u32,
    /// `device_island[d]` is the island index of device `d` — O(1)
    /// `island_of_device` instead of a binary search per lookup, which
    /// dominates `ici_hops`/`torus_coord` on placement hot paths.
    device_island: Vec<u32>,
    /// `host_island[h]` is the island index of host `h`.
    host_island: Vec<u32>,
    /// Memo for [`Topology::is_connected_submesh`], keyed by the exact
    /// device-id set. Sound because a topology is immutable: a set's
    /// connectivity never changes. Bounded (cleared when full), since
    /// the resource manager probes many distinct windows at 10k-device
    /// scale.
    submesh_cache: Lock<FxHashMap<Box<[u32]>, bool>>,
}

impl Topology {
    fn new(spec: &ClusterSpec) -> Self {
        assert!(
            !spec.islands.is_empty(),
            "cluster must have at least one island"
        );
        let mut islands = Vec::with_capacity(spec.islands.len());
        let mut host_cursor = 0u32;
        let mut device_cursor = 0u32;
        for isl in &spec.islands {
            assert!(isl.hosts > 0, "island must have at least one host");
            assert!(
                isl.devices_per_host > 0,
                "island hosts must have at least one device"
            );
            let devices = isl.devices();
            let (rows, cols) = squarest_factors(devices);
            islands.push(IslandInfo {
                first_host: host_cursor,
                hosts: isl.hosts,
                devices_per_host: isl.devices_per_host,
                first_device: device_cursor,
                torus_rows: rows,
                torus_cols: cols,
            });
            host_cursor += isl.hosts;
            device_cursor += devices;
        }
        let mut device_island = Vec::with_capacity(device_cursor as usize);
        let mut host_island = Vec::with_capacity(host_cursor as usize);
        for (idx, info) in islands.iter().enumerate() {
            device_island.extend(std::iter::repeat_n(
                idx as u32,
                (info.hosts * info.devices_per_host) as usize,
            ));
            host_island.extend(std::iter::repeat_n(idx as u32, info.hosts as usize));
        }
        Topology {
            spec: spec.clone(),
            islands,
            num_hosts: host_cursor,
            num_devices: device_cursor,
            device_island,
            host_island,
            submesh_cache: Lock::new(FxHashMap::default()),
        }
    }

    /// The spec this topology was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Total islands.
    pub fn num_islands(&self) -> u32 {
        self.islands.len() as u32
    }

    /// Total hosts across all islands.
    pub fn num_hosts(&self) -> u32 {
        self.num_hosts
    }

    /// Total devices across all islands.
    pub fn num_devices(&self) -> u32 {
        self.num_devices
    }

    /// All island ids.
    pub fn islands(&self) -> impl Iterator<Item = IslandId> + '_ {
        (0..self.num_islands()).map(IslandId)
    }

    /// All host ids.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.num_hosts).map(HostId)
    }

    /// All device ids.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.num_devices).map(DeviceId)
    }

    fn island_info(&self, island: IslandId) -> &IslandInfo {
        &self.islands[island.index()]
    }

    /// Island containing `host`.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn island_of_host(&self, host: HostId) -> IslandId {
        assert!(host.0 < self.num_hosts, "{host} out of range");
        IslandId(self.host_island[host.index()])
    }

    /// Island containing `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn island_of_device(&self, device: DeviceId) -> IslandId {
        assert!(device.0 < self.num_devices, "{device} out of range");
        IslandId(self.device_island[device.index()])
    }

    /// Host that `device` is attached to (PCIe).
    pub fn host_of_device(&self, device: DeviceId) -> HostId {
        let island = self.island_of_device(device);
        let info = self.island_info(island);
        let local = device.0 - info.first_device;
        HostId(info.first_host + local / info.devices_per_host)
    }

    /// Hosts of one island, in id order.
    ///
    /// Islands are id-contiguous, so this is a plain range — no
    /// allocation per call.
    pub fn hosts_of_island(
        &self,
        island: IslandId,
    ) -> impl DoubleEndedIterator<Item = HostId> + ExactSizeIterator + Clone {
        let info = self.island_info(island);
        (info.first_host..info.first_host + info.hosts).map(HostId)
    }

    /// Devices of one island, in id order.
    ///
    /// Islands are id-contiguous, so this is a plain range — no
    /// allocation per call.
    pub fn devices_of_island(
        &self,
        island: IslandId,
    ) -> impl DoubleEndedIterator<Item = DeviceId> + ExactSizeIterator + Clone {
        let info = self.island_info(island);
        let n = info.hosts * info.devices_per_host;
        (info.first_device..info.first_device + n).map(DeviceId)
    }

    /// Devices attached to one host, in id order.
    ///
    /// A host's devices are id-contiguous, so this is a plain range —
    /// no allocation per call.
    pub fn devices_of_host(
        &self,
        host: HostId,
    ) -> impl DoubleEndedIterator<Item = DeviceId> + ExactSizeIterator + Clone {
        let island = self.island_of_host(host);
        let info = self.island_info(island);
        let local_host = host.0 - info.first_host;
        let first = info.first_device + local_host * info.devices_per_host;
        (first..first + info.devices_per_host).map(DeviceId)
    }

    /// Coordinates of `device` in its island's ICI torus.
    pub fn torus_coord(&self, device: DeviceId) -> TorusCoord {
        let island = self.island_of_device(device);
        let info = self.island_info(island);
        let local = device.0 - info.first_device;
        TorusCoord {
            row: local / info.torus_cols,
            col: local % info.torus_cols,
        }
    }

    /// Torus dimensions `(rows, cols)` of an island's ICI mesh.
    pub fn torus_shape(&self, island: IslandId) -> (u32, u32) {
        let info = self.island_info(island);
        (info.torus_rows, info.torus_cols)
    }

    /// ICI hop distance between two devices in the same island.
    ///
    /// # Panics
    ///
    /// Panics if the devices are in different islands (there is no ICI
    /// path between islands; use the DCN).
    pub fn ici_hops(&self, a: DeviceId, b: DeviceId) -> u32 {
        let ia = self.island_of_device(a);
        let ib = self.island_of_device(b);
        assert_eq!(
            ia, ib,
            "no ICI path between islands: {a} is in {ia}, {b} is in {ib}"
        );
        let (rows, cols) = self.torus_shape(ia);
        self.torus_coord(a)
            .torus_distance(self.torus_coord(b), rows, cols)
    }

    /// True if both devices share an island (and hence an ICI mesh).
    pub fn same_island(&self, a: DeviceId, b: DeviceId) -> bool {
        self.island_of_device(a) == self.island_of_device(b)
    }

    /// True if `a` and `b` are directly wired on the ICI torus (one hop
    /// apart in the same island).
    pub fn ici_adjacent(&self, a: DeviceId, b: DeviceId) -> bool {
        self.same_island(a, b) && self.ici_hops(a, b) == 1
    }

    /// True if `devs` forms a single connected submesh of one island's
    /// ICI torus: every device is reachable from every other through
    /// torus-adjacent devices *of the set*. This is the physical meaning
    /// of a "contiguous" (mesh-shaped) slice — a set of device ids that
    /// happens to be consecutive in id order can still be disconnected
    /// once devices in between have been detached.
    ///
    /// An empty set and a singleton are trivially connected; a set
    /// spanning islands is never connected (there is no ICI between
    /// islands).
    pub fn is_connected_submesh(&self, devs: &[DeviceId]) -> bool {
        if devs.len() <= 1 {
            return true;
        }
        let island = self.island_of_device(devs[0]);
        if devs.iter().any(|d| self.island_of_device(*d) != island) {
            return false;
        }
        let key: Box<[u32]> = devs.iter().map(|d| d.0).collect();
        if let Some(&hit) = self.submesh_cache.lock().get(&key) {
            return hit;
        }
        // BFS over torus coordinates with O(1) 4-neighbor lookups:
        // O(w) for a w-device window, replacing the seed's all-pairs
        // adjacency probe (O(w²) with a binary search per probe).
        let (rows, cols) = self.torus_shape(island);
        let coord = |d: &DeviceId| {
            let c = self.torus_coord(*d);
            (c.row, c.col)
        };
        let set: FxHashSet<(u32, u32)> = devs.iter().map(coord).collect();
        let mut seen = FxHashSet::with_capacity_and_hasher(set.len(), Default::default());
        let start = coord(&devs[0]);
        let mut frontier = vec![start];
        seen.insert(start);
        while let Some((r, c)) = frontier.pop() {
            let neighbors = [
                ((r + rows - 1) % rows, c),
                ((r + 1) % rows, c),
                (r, (c + cols - 1) % cols),
                (r, (c + 1) % cols),
            ];
            for n in neighbors {
                if set.contains(&n) && seen.insert(n) {
                    frontier.push(n);
                }
            }
        }
        let connected = seen.len() == set.len();
        let mut cache = self.submesh_cache.lock();
        if cache.len() >= 1 << 16 {
            cache.clear();
        }
        cache.insert(key, connected);
        connected
    }
}

/// Factors `n` into `(rows, cols)` with `rows <= cols`, as square as
/// possible — the shape used for the island's 2-D torus.
fn squarest_factors(n: u32) -> (u32, u32) {
    assert!(n > 0);
    let mut best = (1, n);
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            best = (r, n / r);
        }
        r += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_counts_match_paper() {
        let a = ClusterSpec::config_a(512).build();
        assert_eq!(a.num_devices(), 2048);
        assert_eq!(a.num_hosts(), 512);
        let b = ClusterSpec::config_b(64).build();
        assert_eq!(b.num_devices(), 512);
        let c = ClusterSpec::config_c().build();
        assert_eq!(c.num_islands(), 4);
        assert_eq!(c.num_devices(), 128);
        assert_eq!(c.devices_of_island(IslandId(0)).len(), 32);
    }

    #[test]
    fn host_device_mappings_are_consistent() {
        let topo = ClusterSpec::config_c().build();
        for d in topo.devices() {
            let h = topo.host_of_device(d);
            assert!(topo.devices_of_host(h).any(|x| x == d));
            assert_eq!(topo.island_of_host(h), topo.island_of_device(d));
        }
        for h in topo.hosts() {
            for d in topo.devices_of_host(h) {
                assert_eq!(topo.host_of_device(d), h);
            }
        }
    }

    #[test]
    fn island_boundaries() {
        let topo = ClusterSpec::islands_of(3, 2, 4).build();
        assert_eq!(topo.island_of_device(DeviceId(0)), IslandId(0));
        assert_eq!(topo.island_of_device(DeviceId(7)), IslandId(0));
        assert_eq!(topo.island_of_device(DeviceId(8)), IslandId(1));
        assert_eq!(topo.island_of_device(DeviceId(23)), IslandId(2));
        assert_eq!(topo.island_of_host(HostId(0)), IslandId(0));
        assert_eq!(topo.island_of_host(HostId(2)), IslandId(1));
        assert_eq!(topo.island_of_host(HostId(5)), IslandId(2));
    }

    #[test]
    fn torus_is_square_for_powers_of_two() {
        let topo = ClusterSpec::config_b(8).build(); // 64 devices
        assert_eq!(topo.torus_shape(IslandId(0)), (8, 8));
        let topo = ClusterSpec::config_a(512).build(); // 2048 devices
        assert_eq!(topo.torus_shape(IslandId(0)), (32, 64));
    }

    #[test]
    fn ici_hops_within_island() {
        let topo = ClusterSpec::config_b(8).build(); // 8x8 torus
        assert_eq!(topo.ici_hops(DeviceId(0), DeviceId(0)), 0);
        // dev0 at (0,0), dev63 at (7,7): torus distance 1+1.
        assert_eq!(topo.ici_hops(DeviceId(0), DeviceId(63)), 2);
    }

    #[test]
    #[should_panic(expected = "no ICI path between islands")]
    fn ici_across_islands_panics() {
        let topo = ClusterSpec::config_c().build();
        let _ = topo.ici_hops(DeviceId(0), DeviceId(32));
    }

    #[test]
    fn adjacency_matches_torus_wiring() {
        let topo = ClusterSpec::config_b(4).build(); // 32 devices, 4x8 torus
                                                     // Same row, consecutive columns: one hop.
        assert!(topo.ici_adjacent(DeviceId(0), DeviceId(1)));
        // Same column, consecutive rows: one hop.
        assert!(topo.ici_adjacent(DeviceId(0), DeviceId(8)));
        // Row wrap-around: (0,0) and (0,7) are neighbors on the torus.
        assert!(topo.ici_adjacent(DeviceId(0), DeviceId(7)));
        // Diagonal: two hops, not adjacent.
        assert!(!topo.ici_adjacent(DeviceId(0), DeviceId(9)));
        assert!(!topo.ici_adjacent(DeviceId(0), DeviceId(0)));
    }

    #[test]
    fn connected_submesh_detects_gaps() {
        let topo = ClusterSpec::config_b(4).build(); // 4x8 torus
        let ids = |v: &[u32]| v.iter().map(|d| DeviceId(*d)).collect::<Vec<_>>();
        assert!(topo.is_connected_submesh(&ids(&[])));
        assert!(topo.is_connected_submesh(&ids(&[5])));
        // A row prefix is a path.
        assert!(topo.is_connected_submesh(&ids(&[0, 1, 2, 3])));
        // Two full rows form a 2x8 submesh.
        assert!(topo.is_connected_submesh(&ids(&[
            0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15
        ])));
        // A detach gap in the middle disconnects the window: 3=(0,3)
        // and 5=(0,5) are two hops apart with nothing bridging them.
        assert!(!topo.is_connected_submesh(&ids(&[1, 2, 3, 5])));
        assert!(!topo.is_connected_submesh(&ids(&[0, 1, 4, 5])));
        // {2,3} and {9} are not wired: (1,1) touches (0,1), not (0,2)/(0,3).
        assert!(!topo.is_connected_submesh(&ids(&[2, 3, 9])));
        // Devices from different islands are never connected.
        let c = ClusterSpec::config_c().build();
        assert!(!c.is_connected_submesh(&[DeviceId(31), DeviceId(32)]));
    }

    #[test]
    fn squarest_factors_examples() {
        assert_eq!(squarest_factors(1), (1, 1));
        assert_eq!(squarest_factors(12), (3, 4));
        assert_eq!(squarest_factors(13), (1, 13));
        assert_eq!(squarest_factors(64), (8, 8));
    }
}
