//! Calibrated latency/bandwidth constants for the simulated cluster.
//!
//! Absolute numbers are order-of-magnitude calibrations against public
//! TPUv3 figures and the relationships the paper relies on (§2, Appendix
//! A): PCIe dispatch is fast (a few microseconds), DCN messages are
//! roughly an order of magnitude slower, and ICI is a dedicated
//! high-bandwidth mesh that does not involve the host.

use serde::{Deserialize, Serialize};

use pathways_sim::SimDuration;

/// Bytes-per-second bandwidth newtype.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not finite and positive.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be finite and positive, got {bytes_per_sec}"
        );
        Bandwidth(bytes_per_sec)
    }

    /// Creates a bandwidth from gigabytes per second.
    pub fn from_gbps(gb_per_sec: f64) -> Self {
        Self::from_bytes_per_sec(gb_per_sec * 1e9)
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to push `bytes` through this link (serialization delay only).
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }
}

/// All tunable constants of the simulated interconnects.
///
/// The defaults reproduce the relative magnitudes the paper depends on;
/// experiments override individual fields where a sweep requires it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// One-way PCIe enqueue latency (multi-controller dispatch path).
    pub pcie_latency: SimDuration,
    /// PCIe bandwidth between host DRAM and device HBM.
    pub pcie_bandwidth: Bandwidth,
    /// Per-hop latency on the intra-island ICI mesh.
    pub ici_hop_latency: SimDuration,
    /// Per-link ICI bandwidth.
    pub ici_bandwidth: Bandwidth,
    /// One-way latency of a DCN message between any two hosts.
    pub dcn_latency: SimDuration,
    /// Per-host DCN NIC bandwidth.
    pub dcn_bandwidth: Bandwidth,
    /// Fixed per-message CPU/NIC overhead for DCN sends; the sender's
    /// NIC is occupied for this long per message, so high-fanout sends
    /// serialize. This constant dominates single-controller dispatch
    /// overhead at scale (Figures 5 and 6).
    pub dcn_send_overhead: SimDuration,
    /// Host-side cost to enqueue one accelerator computation over PCIe
    /// (driver + runtime bookkeeping).
    pub enqueue_cpu_overhead: SimDuration,
}

impl NetworkParams {
    /// Calibration used by all experiments unless overridden.
    pub fn tpu_cluster() -> Self {
        NetworkParams {
            pcie_latency: SimDuration::from_micros(3),
            pcie_bandwidth: Bandwidth::from_gbps(16.0),
            ici_hop_latency: SimDuration::from_micros(1),
            ici_bandwidth: Bandwidth::from_gbps(100.0),
            dcn_latency: SimDuration::from_micros(30),
            dcn_bandwidth: Bandwidth::from_gbps(12.5),
            dcn_send_overhead: SimDuration::from_micros(4),
            enqueue_cpu_overhead: SimDuration::from_micros(5),
        }
    }
}

impl Default for NetworkParams {
    fn default() -> Self {
        Self::tpu_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::from_gbps(1.0);
        assert_eq!(bw.transfer_time(1_000_000_000).as_millis(), 1_000);
        assert_eq!(bw.transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn defaults_preserve_paper_magnitudes() {
        let p = NetworkParams::default();
        // DCN dispatch is roughly an order of magnitude slower than PCIe
        // (§2: "typically an order of magnitude slower than PCIe").
        assert!(p.dcn_latency.as_nanos() >= 10 * p.pcie_latency.as_nanos() / 2);
        // ICI is the fastest interconnect.
        assert!(p.ici_bandwidth.bytes_per_sec() > p.dcn_bandwidth.bytes_per_sec());
        assert!(p.ici_hop_latency < p.dcn_latency);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite and positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::from_bytes_per_sec(0.0);
    }
}
