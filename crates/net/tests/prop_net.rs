//! Property-based tests for topology and collective cost models.

use proptest::prelude::*;

use pathways_net::collective::{ring_allreduce, torus_allreduce};
use pathways_net::{Bandwidth, ClusterSpec, DeviceId};
use pathways_sim::SimDuration;

proptest! {
    /// Every device maps to exactly one host, and that host's device list
    /// contains it; islands partition both hosts and devices.
    #[test]
    fn topology_mappings_are_a_partition(
        islands in 1u32..5,
        hosts in 1u32..9,
        dph in 1u32..9,
    ) {
        let topo = ClusterSpec::islands_of(islands, hosts, dph).build();
        prop_assert_eq!(topo.num_devices(), islands * hosts * dph);
        let mut seen = vec![false; topo.num_devices() as usize];
        for h in topo.hosts() {
            for d in topo.devices_of_host(h) {
                prop_assert!(!seen[d.index()], "device listed twice");
                seen[d.index()] = true;
                prop_assert_eq!(topo.host_of_device(d), h);
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
        // Island device lists partition the devices too.
        let total: usize = topo
            .islands()
            .map(|i| topo.devices_of_island(i).len())
            .sum();
        prop_assert_eq!(total, topo.num_devices() as usize);
    }

    /// ICI hop distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn ici_hops_is_a_metric(
        hosts in 1u32..17,
        picks in proptest::collection::vec(0usize..1000, 3),
    ) {
        let topo = ClusterSpec::config_b(hosts).build();
        let n = topo.num_devices() as usize;
        let d = |i: usize| DeviceId((picks[i] % n) as u32);
        let (a, b, c) = (d(0), d(1), d(2));
        prop_assert_eq!(topo.ici_hops(a, b), topo.ici_hops(b, a));
        prop_assert_eq!(topo.ici_hops(a, a), 0);
        if a != b {
            prop_assert!(topo.ici_hops(a, b) > 0);
        }
        prop_assert!(
            topo.ici_hops(a, c) <= topo.ici_hops(a, b) + topo.ici_hops(b, c)
        );
    }

    /// Collective cost models are monotone in payload size and never
    /// cheaper for more participants at fixed payload.
    #[test]
    fn collective_costs_are_monotone(
        rows in 1u32..16,
        cols in 1u32..16,
        bytes_a in 0u64..1_000_000,
        bytes_b in 0u64..1_000_000,
    ) {
        let bw = Bandwidth::from_gbps(100.0);
        let lat = SimDuration::from_micros(1);
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(
            torus_allreduce(rows, cols, lo, bw, lat) <= torus_allreduce(rows, cols, hi, bw, lat)
        );
        prop_assert!(
            torus_allreduce(rows, cols, lo, bw, lat)
                <= torus_allreduce(rows + 1, cols, lo, bw, lat)
        );
        prop_assert!(
            ring_allreduce(rows * cols, lo, bw, lat)
                <= ring_allreduce(rows * cols + 1, lo, bw, lat)
        );
    }

    /// The torus algorithm never loses to the ring for the same device
    /// count when the mesh is at least 2-D (latency-bound regime).
    #[test]
    fn torus_beats_ring_at_scale(rows in 2u32..32, cols in 2u32..32) {
        let bw = Bandwidth::from_gbps(100.0);
        let lat = SimDuration::from_micros(1);
        let torus = torus_allreduce(rows, cols, 4, bw, lat);
        let ring = ring_allreduce(rows * cols, 4, bw, lat);
        prop_assert!(torus <= ring, "torus {torus} vs ring {ring}");
    }
}
