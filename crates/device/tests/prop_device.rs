//! Property-based tests of the simulated accelerator: queue semantics,
//! busy-time accounting and gang-collective alignment under arbitrary
//! workloads.

use proptest::prelude::*;

use pathways_device::{
    CollectiveOp, CollectiveRendezvous, DeviceConfig, DeviceHandle, GangTag, Kernel,
};
use pathways_net::{CollectiveKind, DeviceId};
use pathways_sim::{Sim, SimDuration};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With no collectives, a device's makespan equals the sum of its
    /// kernel durations (in-order, non-preemptible, no gaps) and busy
    /// accounting matches exactly.
    #[test]
    fn makespan_is_sum_of_kernels(durations in proptest::collection::vec(1u64..1_000, 1..40)) {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        let dev = DeviceHandle::spawn(&sim.handle(), DeviceId(0), rz, DeviceConfig::default());
        for (i, us) in durations.iter().enumerate() {
            drop(dev.enqueue_simple(
                Kernel::compute(format!("k{i}"), SimDuration::from_micros(*us)),
                "p",
            ));
        }
        let stats_handle = dev.clone();
        drop(dev);
        let end = sim.run_to_quiescence();
        let total: u64 = durations.iter().sum();
        prop_assert_eq!(end.as_nanos(), total * 1_000);
        prop_assert_eq!(stats_handle.stats().busy, SimDuration::from_micros(total));
        prop_assert_eq!(stats_handle.stats().kernels, durations.len() as u64);
    }

    /// Any *consistent* interleaving of collective and compute kernels
    /// across n devices completes (only inconsistent orders deadlock).
    #[test]
    fn consistent_gang_orders_complete(
        n_devices in 2u32..6,
        ops in proptest::collection::vec((any::<bool>(), 1u64..50), 1..15),
    ) {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        let devs: Vec<DeviceHandle> = (0..n_devices)
            .map(|i| {
                DeviceHandle::spawn(&sim.handle(), DeviceId(i), rz.clone(), DeviceConfig::default())
            })
            .collect();
        // Same op sequence enqueued on every device = consistent order.
        for (tag, (is_coll, us)) in ops.iter().enumerate() {
            for dev in &devs {
                let mut k = Kernel::compute(format!("k{tag}"), SimDuration::from_micros(*us));
                if *is_coll {
                    k = k.with_collective(CollectiveOp {
                        kind: CollectiveKind::AllReduce,
                        tag: GangTag(tag as u64),
                        participants: n_devices,
                        duration: SimDuration::from_micros(3),
                        devices: vec![],
                    });
                }
                drop(dev.enqueue_simple(k, "p"));
            }
        }
        drop(devs);
        let outcome = sim.run();
        prop_assert!(outcome.is_quiescent(), "consistent order deadlocked: {:?}", outcome);
    }

    /// All gang participants finish a collective at the same instant,
    /// no matter how staggered their arrival.
    #[test]
    fn gang_participants_align(
        delays in proptest::collection::vec(0u64..500, 2..6),
    ) {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        let n = delays.len() as u32;
        let mut ends = Vec::new();
        for (i, d) in delays.iter().enumerate() {
            let dev = DeviceHandle::spawn(
                &sim.handle(),
                DeviceId(i as u32),
                rz.clone(),
                DeviceConfig::default(),
            );
            // Stagger with a leading pure-compute kernel.
            drop(dev.enqueue_simple(
                Kernel::compute("warmup", SimDuration::from_micros(*d)),
                "p",
            ));
            ends.push(dev.enqueue_simple(
                Kernel::compute("c", SimDuration::ZERO).with_collective(CollectiveOp {
                    kind: CollectiveKind::AllReduce,
                    tag: GangTag(1),
                    participants: n,
                    duration: SimDuration::from_micros(7),
                    devices: vec![],
                }),
                "p",
            ));
        }
        let probe = sim.spawn("probe", async move {
            let mut finish = Vec::new();
            for e in ends {
                finish.push(e.await.unwrap().finished.as_nanos());
            }
            finish
        });
        sim.run_to_quiescence();
        let finish = probe.try_take().unwrap();
        let expected = delays.iter().max().unwrap() * 1_000 + 7_000;
        for f in finish {
            prop_assert_eq!(f, expected);
        }
    }

    /// HBM leases never leak under arbitrary allocate/free interleavings
    /// driven through kernels with output reservations.
    #[test]
    fn hbm_conserved_across_workloads(
        sizes in proptest::collection::vec(1u64..1_000, 1..25),
    ) {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        let dev = DeviceHandle::spawn(
            &sim.handle(),
            DeviceId(0),
            rz,
            DeviceConfig { hbm_capacity: 4_000 },
        );
        let hbm = dev.hbm().clone();
        let h = sim.handle();
        let sizes2 = sizes.clone();
        sim.spawn("alloc-free", async move {
            for s in sizes2 {
                let lease = hbm.allocate(s.min(4_000)).await;
                h.sleep(SimDuration::from_nanos(s)).await;
                drop(lease);
            }
        });
        drop(dev.clone());
        let hbm_after = dev.hbm().clone();
        drop(dev);
        sim.run_to_quiescence();
        prop_assert_eq!(hbm_after.used(), 0);
        prop_assert_eq!(hbm_after.free(), 4_000);
    }
}
