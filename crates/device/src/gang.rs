//! Collective rendezvous — where inconsistent enqueue orders become
//! deadlocks.
//!
//! TPUs "are single-threaded and only run non-preemptible kernels, so the
//! system will deadlock if communicating computations are not enqueued in
//! a consistent order" (§2). We reproduce that hazard faithfully: a
//! collective kernel blocks its device's queue until *every* participant
//! has reached the same [`GangTag`](crate::GangTag). If two devices
//! enqueue two collectives in opposite orders, each blocks at the head of
//! its queue waiting for the other, no timer can fire, and the simulation
//! reports a deadlock naming the stuck devices — exactly the failure the
//! centralized gang scheduler (pathways-core) exists to prevent.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use pathways_sim::channel::{self, OneshotSender};
use pathways_sim::{SimDuration, SimHandle};

use crate::kernel::GangTag;

struct Pending {
    expected: u32,
    duration: SimDuration,
    waiters: Vec<OneshotSender<()>>,
}

/// Rendezvous point shared by all devices of one island.
#[derive(Clone)]
pub struct CollectiveRendezvous {
    handle: SimHandle,
    pending: Rc<RefCell<HashMap<GangTag, Pending>>>,
}

impl fmt::Debug for CollectiveRendezvous {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectiveRendezvous")
            .field("pending", &self.pending.borrow().len())
            .finish()
    }
}

impl CollectiveRendezvous {
    /// Creates an empty rendezvous table.
    pub fn new(handle: SimHandle) -> Self {
        CollectiveRendezvous {
            handle,
            pending: Rc::new(RefCell::new(HashMap::new())),
        }
    }

    /// Number of collectives with at least one arrived participant that
    /// have not yet released (useful for deadlock diagnosis).
    pub fn in_flight(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Arrives at collective `tag` expecting `participants` devices in
    /// total; resolves after all have arrived *and* the collective's wire
    /// time `duration` has elapsed.
    ///
    /// # Panics
    ///
    /// Panics if participants disagree on `participants` or `duration`
    /// for the same tag (a malformed program, not a scheduling hazard).
    // The `pending` borrow is confined to the block computing `release`
    // and dropped before the await; clippy's conservative lint cannot
    // see through the block scope. The simulation is single-threaded
    // cooperative, so no other task runs while the borrow is live.
    #[allow(clippy::await_holding_refcell_ref)]
    pub async fn arrive(&self, tag: GangTag, participants: u32, duration: SimDuration) {
        assert!(participants > 0, "collective needs participants");
        let release = {
            let mut pending = self.pending.borrow_mut();
            let entry = pending.entry(tag).or_insert_with(|| Pending {
                expected: participants,
                duration,
                waiters: Vec::new(),
            });
            assert_eq!(
                entry.expected, participants,
                "{tag}: participants disagree on gang size"
            );
            assert_eq!(
                entry.duration, duration,
                "{tag}: participants disagree on collective duration"
            );
            if entry.waiters.len() as u32 + 1 == participants {
                // Last to arrive: release everyone.
                let entry = pending.remove(&tag).expect("entry exists");
                Some(entry.waiters)
            } else {
                let (tx, rx) = channel::oneshot();
                entry.waiters.push(tx);
                drop(pending);
                rx.await.expect("rendezvous dropped mid-collective");
                None
            }
        };
        if let Some(waiters) = release {
            for w in waiters {
                let _ = w.send(());
            }
        }
        // All participants resume here at the same instant, then sleep
        // the collective's wire time together.
        self.handle.sleep(duration).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathways_sim::Sim;

    #[test]
    fn all_participants_finish_together() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        let mut ends = Vec::new();
        for i in 0..4u64 {
            let rz = rz.clone();
            let h = sim.handle();
            ends.push(sim.spawn(format!("d{i}"), async move {
                // Stagger arrivals.
                h.sleep(SimDuration::from_micros(i * 10)).await;
                rz.arrive(GangTag(1), 4, SimDuration::from_micros(5)).await;
                h.now().as_nanos()
            }));
        }
        sim.run_to_quiescence();
        for e in ends {
            // Last arrival at 30us + 5us collective.
            assert_eq!(e.try_take().unwrap(), 35_000);
        }
        assert_eq!(rz.in_flight(), 0);
    }

    #[test]
    fn missing_participant_deadlocks() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        for i in 0..2 {
            let rz = rz.clone();
            sim.spawn(format!("d{i}"), async move {
                rz.arrive(GangTag(9), 3, SimDuration::ZERO).await;
            });
        }
        let out = sim.run();
        assert!(out.is_deadlock(), "expected deadlock, got {out:?}");
        assert_eq!(rz.in_flight(), 1);
    }

    #[test]
    fn inconsistent_order_across_two_collectives_deadlocks() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        // Device A runs collective 1 then 2; device B runs 2 then 1.
        // Each blocks at its head-of-queue collective: deadlock.
        let rz_a = rz.clone();
        sim.spawn("devA", async move {
            rz_a.arrive(GangTag(1), 2, SimDuration::ZERO).await;
            rz_a.arrive(GangTag(2), 2, SimDuration::ZERO).await;
        });
        let rz_b = rz.clone();
        sim.spawn("devB", async move {
            rz_b.arrive(GangTag(2), 2, SimDuration::ZERO).await;
            rz_b.arrive(GangTag(1), 2, SimDuration::ZERO).await;
        });
        match sim.run() {
            pathways_sim::RunOutcome::Deadlock { stuck_tasks, .. } => {
                assert_eq!(stuck_tasks, vec!["devA".to_string(), "devB".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn consistent_order_completes() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        for name in ["devA", "devB"] {
            let rz = rz.clone();
            sim.spawn(name, async move {
                rz.arrive(GangTag(1), 2, SimDuration::from_micros(1)).await;
                rz.arrive(GangTag(2), 2, SimDuration::from_micros(1)).await;
            });
        }
        assert!(sim.run().is_quiescent());
    }

    #[test]
    #[should_panic(expected = "participants disagree on gang size")]
    fn gang_size_mismatch_panics() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        let rz_a = rz.clone();
        sim.spawn("a", async move {
            rz_a.arrive(GangTag(3), 2, SimDuration::ZERO).await;
        });
        let rz_b = rz.clone();
        sim.spawn("b", async move {
            rz_b.arrive(GangTag(3), 5, SimDuration::ZERO).await;
        });
        sim.run_to_quiescence();
    }
}
