//! Collective rendezvous — where inconsistent enqueue orders become
//! deadlocks, and where device failures turn would-be hangs into typed
//! gang aborts.
//!
//! TPUs "are single-threaded and only run non-preemptible kernels, so the
//! system will deadlock if communicating computations are not enqueued in
//! a consistent order" (§2). We reproduce that hazard faithfully: a
//! collective kernel blocks its device's queue until *every* participant
//! has reached the same [`GangTag`](crate::GangTag). If two devices
//! enqueue two collectives in opposite orders, each blocks at the head of
//! its queue waiting for the other, no timer can fire, and the simulation
//! reports a deadlock naming the stuck devices — exactly the failure the
//! centralized gang scheduler (pathways-core) exists to prevent.
//!
//! Failure semantics: a dead device never reaches its collective, so its
//! partners would block forever. When an arrival declares its gang's
//! membership (the scheduler knows it; the grant carries it), the
//! rendezvous checks the member list against the island's dead set and
//! aborts the whole gang with [`GangAborted`] instead of blocking —
//! either immediately at arrival, or retroactively when
//! [`CollectiveRendezvous::mark_dead`] hits a tag with waiters. Arrivals
//! with an *empty* member list opt out of failure detection (legacy
//! call sites and tests that never inject faults).

use pathways_sim::Lock;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use pathways_net::{DeviceId, FxHashMap, FxHashSet};
use pathways_sim::channel::{self, OneshotSender};
use pathways_sim::{SimDuration, SimHandle};

use crate::kernel::GangTag;

/// A gang collective was aborted because a participating device died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GangAborted {
    /// The aborted collective instance.
    pub tag: GangTag,
    /// The dead participant that doomed the gang, when known (a gang can
    /// also be aborted by a tag poisoned before this arrival).
    pub dead: Option<DeviceId>,
}

impl fmt::Display for GangAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dead {
            Some(d) => write!(f, "{} aborted: participant {d} is dead", self.tag),
            None => write!(f, "{} aborted: gang includes a dead device", self.tag),
        }
    }
}

impl std::error::Error for GangAborted {}

struct Pending {
    expected: u32,
    duration: SimDuration,
    waiters: Vec<OneshotSender<Result<(), GangAborted>>>,
    /// Union of the member lists declared by arrivals so far. Used by
    /// [`CollectiveRendezvous::mark_dead`] to find doomed gangs.
    members: BTreeSet<DeviceId>,
    /// Owning run of the gang (0 = unknown), for
    /// [`CollectiveRendezvous::mark_owner_failed`].
    owner: u64,
}

struct RzState {
    pending: FxHashMap<GangTag, Pending>,
    /// Reverse index: declared member -> pending tags naming it. Keeps
    /// [`CollectiveRendezvous::mark_dead`] proportional to the gangs
    /// that actually include the dead device, not all in-flight gangs.
    /// A plain `Vec` per key: the happy path (every collective of every
    /// step) maintains it with O(1) pushes and swap-removes, and the
    /// rare abort path sorts its snapshot into the ascending tag order
    /// the old full scan produced. Empty lists stay in the map so their
    /// capacity is reused — a steady-state step allocates nothing here.
    by_member: FxHashMap<DeviceId, Vec<GangTag>>,
    /// Reverse index: owning run -> pending tags, for
    /// [`CollectiveRendezvous::mark_owner_failed`]. Owner 0 (unknown)
    /// is never indexed.
    by_owner: FxHashMap<u64, Vec<GangTag>>,
    dead: FxHashSet<DeviceId>,
    /// Owners (runs) whose gangs must abort: members that were never
    /// enqueued (grants lost to a dead host or severed link) would
    /// otherwise leave arrived partners waiting forever.
    failed_owners: FxHashSet<u64>,
    /// Tags aborted by a death or owner failure; later arrivals fail
    /// immediately.
    poisoned: FxHashMap<GangTag, Option<DeviceId>>,
}

/// Removes one occurrence of `tag` (insertions and removals are 1:1).
fn unindex(list: &mut Vec<GangTag>, tag: GangTag) {
    if let Some(pos) = list.iter().position(|x| *x == tag) {
        list.swap_remove(pos);
    }
}

impl RzState {
    /// Removes `tag` from `pending` and both reverse indexes.
    fn remove_pending(&mut self, tag: GangTag) -> Option<Pending> {
        let p = self.pending.remove(&tag)?;
        for m in &p.members {
            if let Some(tags) = self.by_member.get_mut(m) {
                unindex(tags, tag);
            }
        }
        if p.owner != 0 {
            if let Some(tags) = self.by_owner.get_mut(&p.owner) {
                unindex(tags, tag);
            }
        }
        Some(p)
    }
}

/// Rendezvous point shared by all devices of one island.
#[derive(Clone)]
pub struct CollectiveRendezvous {
    handle: SimHandle,
    state: Arc<Lock<RzState>>,
}

impl fmt::Debug for CollectiveRendezvous {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("CollectiveRendezvous")
            .field("pending", &st.pending.len())
            .field("dead", &st.dead.len())
            .finish()
    }
}

impl CollectiveRendezvous {
    /// Creates an empty rendezvous table.
    pub fn new(handle: SimHandle) -> Self {
        CollectiveRendezvous {
            handle,
            state: Arc::new(Lock::named(
                "device.rendezvous",
                RzState {
                    pending: FxHashMap::default(),
                    by_member: FxHashMap::default(),
                    by_owner: FxHashMap::default(),
                    dead: FxHashSet::default(),
                    failed_owners: FxHashSet::default(),
                    poisoned: FxHashMap::default(),
                },
            )),
        }
    }

    /// Number of collectives with at least one arrived participant that
    /// have not yet released (useful for deadlock diagnosis).
    pub fn in_flight(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Declares `device` dead: gangs whose declared membership includes
    /// it abort — pending waiters wake with [`GangAborted`] now, future
    /// arrivals at poisoned tags fail immediately, and future arrivals
    /// whose member list contains a dead device fail up front.
    pub fn mark_dead(&self, device: DeviceId) {
        let doomed_waiters = {
            let mut st = self.state.lock();
            if !st.dead.insert(device) {
                return;
            }
            // The member index yields exactly the gangs naming this
            // device; sorting restores the deterministic ascending
            // abort order the old sorted full scan produced.
            let mut doomed: Vec<GangTag> = st
                .by_member
                .get(&device)
                .map(|tags| tags.to_vec())
                .unwrap_or_default();
            doomed.sort_unstable();
            let mut all = Vec::new();
            for tag in doomed {
                let p = st.remove_pending(tag).expect("tag is indexed");
                st.poisoned.insert(tag, Some(device));
                all.push((tag, p.waiters));
            }
            all
        };
        for (tag, waiters) in doomed_waiters {
            for w in waiters {
                let _ = w.send(Err(GangAborted {
                    tag,
                    dead: Some(device),
                }));
            }
        }
    }

    /// True if `device` has been marked dead on this rendezvous.
    pub fn is_dead(&self, device: DeviceId) -> bool {
        self.state.lock().dead.contains(&device)
    }

    /// Declares run `owner` failed: its pending gangs abort now, and
    /// its future arrivals fail immediately. This is what prevents a
    /// partially-enqueued gang — some members' grants lost to a dead
    /// host or severed link — from blocking its arrived members forever.
    /// `owner` 0 (unknown) is ignored.
    pub fn mark_owner_failed(&self, owner: u64) {
        if owner == 0 {
            return;
        }
        let doomed_waiters = {
            let mut st = self.state.lock();
            if !st.failed_owners.insert(owner) {
                return;
            }
            let mut doomed: Vec<GangTag> = st
                .by_owner
                .get(&owner)
                .map(|tags| tags.to_vec())
                .unwrap_or_default();
            doomed.sort_unstable();
            let mut all = Vec::new();
            for tag in doomed {
                let p = st.remove_pending(tag).expect("tag is indexed");
                st.poisoned.insert(tag, None);
                all.push((tag, p.waiters));
            }
            all
        };
        for (tag, waiters) in doomed_waiters {
            for w in waiters {
                let _ = w.send(Err(GangAborted { tag, dead: None }));
            }
        }
    }

    /// Arrives at collective `tag` expecting `participants` devices in
    /// total; resolves after all have arrived *and* the collective's wire
    /// time `duration` has elapsed.
    ///
    /// `members` is the gang's device list as known to the caller (the
    /// scheduler's grant carries it); an empty slice opts out of failure
    /// detection for this arrival.
    ///
    /// # Errors
    ///
    /// [`GangAborted`] if the tag was poisoned by an earlier death, a
    /// declared member is already dead, or a member dies while waiting.
    ///
    /// # Panics
    ///
    /// Panics if participants disagree on `participants` or `duration`
    /// for the same tag (a malformed program, not a scheduling hazard).
    pub async fn arrive(
        &self,
        tag: GangTag,
        participants: u32,
        duration: SimDuration,
        members: &[DeviceId],
        owner: u64,
    ) -> Result<(), GangAborted> {
        assert!(participants > 0, "collective needs participants");
        // `Ok(waiters)`: last to arrive, release everyone. `Err(rx)`:
        // wait for the releaser. The state borrow ends with this block,
        // before any await.
        let outcome = {
            let mut st = self.state.lock();
            if let Some(&dead) = st.poisoned.get(&tag) {
                return Err(GangAborted { tag, dead });
            }
            if owner != 0 && st.failed_owners.contains(&owner) {
                let waiters = st.remove_pending(tag).map(|p| p.waiters);
                st.poisoned.insert(tag, None);
                drop(st);
                for w in waiters.into_iter().flatten() {
                    let _ = w.send(Err(GangAborted { tag, dead: None }));
                }
                return Err(GangAborted { tag, dead: None });
            }
            if let Some(&d) = members.iter().find(|d| st.dead.contains(d)) {
                // A member is already dead: poison the tag and abort any
                // waiters that raced us in.
                let waiters = st.remove_pending(tag).map(|p| p.waiters);
                st.poisoned.insert(tag, Some(d));
                drop(st);
                for w in waiters.into_iter().flatten() {
                    let _ = w.send(Err(GangAborted { tag, dead: Some(d) }));
                }
                return Err(GangAborted { tag, dead: Some(d) });
            }
            let st = &mut *st;
            let entry = st.pending.entry(tag).or_insert_with(|| Pending {
                expected: participants,
                duration,
                waiters: Vec::new(),
                members: BTreeSet::new(),
                owner: 0,
            });
            assert_eq!(
                entry.expected, participants,
                "{tag}: participants disagree on gang size"
            );
            assert_eq!(
                entry.duration, duration,
                "{tag}: participants disagree on collective duration"
            );
            for m in members {
                if entry.members.insert(*m) {
                    st.by_member.entry(*m).or_default().push(tag);
                }
            }
            if entry.owner == 0 && owner != 0 {
                entry.owner = owner;
                st.by_owner.entry(owner).or_default().push(tag);
            }
            if entry.waiters.len() as u32 + 1 == participants {
                // Last to arrive: release everyone.
                let entry = st.remove_pending(tag).expect("entry exists");
                Ok(entry.waiters)
            } else {
                let (tx, rx) = channel::oneshot();
                entry.waiters.push(tx);
                Err(rx)
            }
        };
        match outcome {
            Ok(waiters) => {
                for w in waiters {
                    let _ = w.send(Ok(()));
                }
            }
            Err(rx) => rx.await.expect("rendezvous dropped mid-collective")?,
        }
        // All participants resume here at the same instant, then sleep
        // the collective's wire time together.
        self.handle.sleep(duration).await;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathways_sim::Sim;

    #[test]
    fn all_participants_finish_together() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        let mut ends = Vec::new();
        for i in 0..4u64 {
            let rz = rz.clone();
            let h = sim.handle();
            ends.push(sim.spawn(format!("d{i}"), async move {
                // Stagger arrivals.
                h.sleep(SimDuration::from_micros(i * 10)).await;
                rz.arrive(GangTag(1), 4, SimDuration::from_micros(5), &[], 0)
                    .await
                    .unwrap();
                h.now().as_nanos()
            }));
        }
        sim.run_to_quiescence();
        for e in ends {
            // Last arrival at 30us + 5us collective.
            assert_eq!(e.try_take().unwrap(), 35_000);
        }
        assert_eq!(rz.in_flight(), 0);
    }

    #[test]
    fn missing_participant_deadlocks() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        for i in 0..2 {
            let rz = rz.clone();
            sim.spawn(format!("d{i}"), async move {
                rz.arrive(GangTag(9), 3, SimDuration::ZERO, &[], 0)
                    .await
                    .unwrap();
            });
        }
        let out = sim.run();
        assert!(out.is_deadlock(), "expected deadlock, got {out:?}");
        assert_eq!(rz.in_flight(), 1);
    }

    #[test]
    fn inconsistent_order_across_two_collectives_deadlocks() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        // Device A runs collective 1 then 2; device B runs 2 then 1.
        // Each blocks at its head-of-queue collective: deadlock.
        let rz_a = rz.clone();
        sim.spawn("devA", async move {
            rz_a.arrive(GangTag(1), 2, SimDuration::ZERO, &[], 0)
                .await
                .unwrap();
            rz_a.arrive(GangTag(2), 2, SimDuration::ZERO, &[], 0)
                .await
                .unwrap();
        });
        let rz_b = rz.clone();
        sim.spawn("devB", async move {
            rz_b.arrive(GangTag(2), 2, SimDuration::ZERO, &[], 0)
                .await
                .unwrap();
            rz_b.arrive(GangTag(1), 2, SimDuration::ZERO, &[], 0)
                .await
                .unwrap();
        });
        match sim.run() {
            pathways_sim::RunOutcome::Deadlock { stuck_tasks, .. } => {
                assert_eq!(stuck_tasks, vec!["devA".to_string(), "devB".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn consistent_order_completes() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        for name in ["devA", "devB"] {
            let rz = rz.clone();
            sim.spawn(name, async move {
                rz.arrive(GangTag(1), 2, SimDuration::from_micros(1), &[], 0)
                    .await
                    .unwrap();
                rz.arrive(GangTag(2), 2, SimDuration::from_micros(1), &[], 0)
                    .await
                    .unwrap();
            });
        }
        assert!(sim.run().is_quiescent());
    }

    #[test]
    #[should_panic(expected = "participants disagree on gang size")]
    fn gang_size_mismatch_panics() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        let rz_a = rz.clone();
        sim.spawn("a", async move {
            let _ = rz_a.arrive(GangTag(3), 2, SimDuration::ZERO, &[], 0).await;
        });
        let rz_b = rz.clone();
        sim.spawn("b", async move {
            let _ = rz_b.arrive(GangTag(3), 5, SimDuration::ZERO, &[], 0).await;
        });
        sim.run_to_quiescence();
    }

    #[test]
    fn death_aborts_waiting_partners_instead_of_hanging() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        let gang = [DeviceId(0), DeviceId(1)];
        // Device 0 arrives and waits for device 1, which dies instead.
        let rz_a = rz.clone();
        let waiter = sim.spawn("dev0", async move {
            rz_a.arrive(GangTag(7), 2, SimDuration::from_micros(5), &gang, 0)
                .await
        });
        let rz_k = rz.clone();
        let h = sim.handle();
        sim.spawn("fault", async move {
            h.sleep(SimDuration::from_micros(10)).await;
            rz_k.mark_dead(DeviceId(1));
        });
        assert!(sim.run().is_quiescent(), "abort must unwedge the waiter");
        let err = waiter.try_take().unwrap().unwrap_err();
        assert_eq!(err.tag, GangTag(7));
        assert_eq!(err.dead, Some(DeviceId(1)));
        assert_eq!(rz.in_flight(), 0);
    }

    #[test]
    fn arrival_with_dead_member_fails_immediately() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        rz.mark_dead(DeviceId(3));
        let gang = [DeviceId(2), DeviceId(3)];
        let rz_a = rz.clone();
        let t = sim.spawn("dev2", async move {
            rz_a.arrive(GangTag(1), 2, SimDuration::ZERO, &gang, 0)
                .await
        });
        sim.run_to_quiescence();
        assert!(t.try_take().unwrap().is_err());
        // The poisoned tag also rejects later arrivals without members.
        let rz_b = rz.clone();
        let late = sim.spawn("late", async move {
            rz_b.arrive(GangTag(1), 2, SimDuration::ZERO, &[], 0).await
        });
        sim.run_to_quiescence();
        assert!(late.try_take().unwrap().is_err());
    }

    #[test]
    fn unrelated_gangs_survive_a_death() {
        let mut sim = Sim::new(0);
        let rz = CollectiveRendezvous::new(sim.handle());
        rz.mark_dead(DeviceId(9));
        let gang = [DeviceId(0), DeviceId(1)];
        for i in 0..2u32 {
            let rz = rz.clone();
            sim.spawn(format!("d{i}"), async move {
                rz.arrive(GangTag(4), 2, SimDuration::from_micros(1), &gang, 0)
                    .await
                    .unwrap();
            });
        }
        assert!(sim.run().is_quiescent());
    }
}
