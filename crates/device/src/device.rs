//! The simulated accelerator proper.
//!
//! A device is a single in-order, non-preemptible kernel queue (Appendix
//! A.5: TPUs "are restricted to run a single program at a time, with no
//! local pre-emption"). Work is enqueued asynchronously — the enqueueing
//! host never blocks — and each kernel:
//!
//! 1. waits for its input buffers to be ready (futures, §4.4),
//! 2. runs its gang collective, blocking the queue until every
//!    participant reaches the same collective,
//! 3. computes for its statically-known duration.
//!
//! The device records a trace span per kernel and per-program busy time,
//! which the multi-tenancy experiments (Figures 8, 9, 11) read back.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use pathways_net::DeviceId;
use pathways_sim::channel::{self, OneshotReceiver, OneshotSender, Sender};
use pathways_sim::{SimDuration, SimHandle, SimTime};

use crate::gang::CollectiveRendezvous;
use crate::hbm::HbmPool;
use crate::kernel::Kernel;

/// Configuration of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// HBM capacity in bytes. The paper's T5 experiments use TPUv3 with
    /// 16 GiB per core.
    pub hbm_capacity: u64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            hbm_capacity: 16 << 30,
        }
    }
}

/// Completion record delivered when a kernel finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCompletion {
    /// When the kernel reached the head of the queue.
    pub dequeued: SimTime,
    /// When the kernel finished.
    pub finished: SimTime,
}

/// One enqueued unit of work.
pub struct EnqueuedKernel {
    /// The kernel to run.
    pub kernel: Kernel,
    /// Owning program label (used for traces and per-program accounting).
    pub program: String,
    /// Input-readiness futures; the kernel starts only after all resolve.
    /// A dropped sender counts as ready (the producer was cleaned up; the
    /// data was already in HBM).
    pub inputs_ready: Vec<OneshotReceiver<()>>,
    /// Completion notification; dropped silently if the receiver is gone.
    pub done: Option<OneshotSender<KernelCompletion>>,
}

impl fmt::Debug for EnqueuedKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnqueuedKernel")
            .field("kernel", &self.kernel.label)
            .field("program", &self.program)
            .field("inputs", &self.inputs_ready.len())
            .finish()
    }
}

/// Aggregate statistics of one device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Kernels executed to completion.
    pub kernels: u64,
    /// Total busy time (collective wire time + compute), excluding time
    /// spent waiting for inputs or for gang partners.
    pub busy: SimDuration,
    /// Busy time per program label.
    pub busy_by_program: BTreeMap<String, SimDuration>,
}

/// Handle for enqueueing work onto a spawned device.
#[derive(Clone)]
pub struct DeviceHandle {
    id: DeviceId,
    tx: Sender<EnqueuedKernel>,
    hbm: HbmPool,
    stats: Rc<RefCell<DeviceStats>>,
}

impl fmt::Debug for DeviceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceHandle")
            .field("id", &self.id)
            .field("hbm_free", &self.hbm.free())
            .finish()
    }
}

impl DeviceHandle {
    /// Spawns the device task onto the simulation and returns its handle.
    ///
    /// `rendezvous` must be shared by all devices that will participate
    /// in collectives together (one per island).
    pub fn spawn(
        sim: &SimHandle,
        id: DeviceId,
        rendezvous: CollectiveRendezvous,
        config: DeviceConfig,
    ) -> DeviceHandle {
        let (tx, mut rx) = channel::channel::<EnqueuedKernel>();
        let hbm = HbmPool::new(config.hbm_capacity);
        let stats = Rc::new(RefCell::new(DeviceStats::default()));
        let stats_task = Rc::clone(&stats);
        let handle = sim.clone();
        let token = pathways_sim::IdleToken::new();
        let token_task = token.clone();
        sim.spawn_service(format!("{id}"), &token, async move {
            loop {
                token_task.set_idle();
                let Some(job) = rx.recv().await else { break };
                token_task.set_busy();
                // 1. Wait for inputs (dropped producers count as ready).
                for input in job.inputs_ready {
                    let _ = input.await;
                }
                let dequeued = handle.now();
                // 2. Gang collective: blocks the whole queue until every
                //    participant arrives at the same tag.
                if let Some(c) = &job.kernel.collective {
                    rendezvous.arrive(c.tag, c.participants, c.duration).await;
                }
                // 3. Statically-known compute time.
                handle.sleep(job.kernel.compute).await;
                let finished = handle.now();
                let busy = job.kernel.min_duration();
                {
                    let mut st = stats_task.borrow_mut();
                    st.kernels += 1;
                    st.busy += busy;
                    *st.busy_by_program.entry(job.program.clone()).or_default() += busy;
                }
                handle.trace_span(
                    format!("d{:04}", id.0),
                    job.program.clone(),
                    finished - busy,
                    finished,
                );
                if let Some(done) = job.done {
                    let _ = done.send(KernelCompletion { dequeued, finished });
                }
            }
        });
        DeviceHandle { id, tx, hbm, stats }
    }

    /// This device's id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device's HBM pool (used by object stores for reservations).
    pub fn hbm(&self) -> &HbmPool {
        &self.hbm
    }

    /// Enqueues a kernel; returns immediately (asynchronous dispatch).
    ///
    /// # Panics
    ///
    /// Panics if the device task has exited (all handles dropped).
    pub fn enqueue(&self, job: EnqueuedKernel) {
        self.tx
            .send(job)
            .unwrap_or_else(|_| panic!("{} has shut down", self.id));
    }

    /// Convenience: enqueue a kernel with no inputs and return its
    /// completion future.
    pub fn enqueue_simple(
        &self,
        kernel: Kernel,
        program: impl Into<String>,
    ) -> OneshotReceiver<KernelCompletion> {
        let (tx, rx) = channel::oneshot();
        self.enqueue(EnqueuedKernel {
            kernel,
            program: program.into(),
            inputs_ready: Vec::new(),
            done: Some(tx),
        });
        rx
    }

    /// Snapshot of the device's statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{CollectiveOp, GangTag};
    use pathways_net::CollectiveKind;
    use pathways_sim::Sim;

    fn spawn_devices(sim: &Sim, n: u32) -> Vec<DeviceHandle> {
        let rz = CollectiveRendezvous::new(sim.handle());
        (0..n)
            .map(|i| {
                DeviceHandle::spawn(
                    &sim.handle(),
                    DeviceId(i),
                    rz.clone(),
                    DeviceConfig::default(),
                )
            })
            .collect()
    }

    #[test]
    fn kernels_execute_in_enqueue_order() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        let r1 = d.enqueue_simple(Kernel::compute("k1", SimDuration::from_micros(10)), "p");
        let r2 = d.enqueue_simple(Kernel::compute("k2", SimDuration::from_micros(5)), "p");
        let probe = sim.spawn("probe", async move {
            let c1 = r1.await.unwrap();
            let c2 = r2.await.unwrap();
            (c1, c2)
        });
        drop(devs);
        sim.run_to_quiescence();
        let (c1, c2) = probe.try_take().unwrap();
        assert_eq!(c1.finished.as_nanos(), 10_000);
        // k2 runs only after k1 despite being shorter.
        assert_eq!(c2.finished.as_nanos(), 15_000);
    }

    #[test]
    fn kernel_waits_for_inputs() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        let (in_tx, in_rx) = channel::oneshot();
        let (done_tx, done_rx) = channel::oneshot();
        d.enqueue(EnqueuedKernel {
            kernel: Kernel::compute("k", SimDuration::from_micros(10)),
            program: "p".into(),
            inputs_ready: vec![in_rx],
            done: Some(done_tx),
        });
        let h = sim.handle();
        sim.spawn("producer", async move {
            h.sleep(SimDuration::from_micros(100)).await;
            let _ = in_tx.send(());
        });
        let probe = sim.spawn("probe", async move { done_rx.await.unwrap() });
        drop(devs);
        sim.run_to_quiescence();
        let c = probe.try_take().unwrap();
        assert_eq!(c.dequeued.as_nanos(), 100_000);
        assert_eq!(c.finished.as_nanos(), 110_000);
    }

    #[test]
    fn gang_collective_aligns_devices() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 2);
        let coll = |tag| CollectiveOp {
            kind: CollectiveKind::AllReduce,
            tag: GangTag(tag),
            participants: 2,
            duration: SimDuration::from_micros(3),
        };
        // Device 0 is delayed by a long kernel first.
        drop(devs[0].enqueue_simple(Kernel::compute("slow", SimDuration::from_micros(50)), "p"));
        let r0 = devs[0].enqueue_simple(
            Kernel::compute("c", SimDuration::from_micros(1)).with_collective(coll(1)),
            "p",
        );
        let r1 = devs[1].enqueue_simple(
            Kernel::compute("c", SimDuration::from_micros(1)).with_collective(coll(1)),
            "p",
        );
        let probe = sim.spawn(
            "probe",
            async move { (r0.await.unwrap(), r1.await.unwrap()) },
        );
        drop(devs);
        sim.run_to_quiescence();
        let (c0, c1) = probe.try_take().unwrap();
        // Both finish together: 50us wait + 3us collective + 1us compute.
        assert_eq!(c0.finished.as_nanos(), 54_000);
        assert_eq!(c1.finished.as_nanos(), 54_000);
    }

    #[test]
    fn inconsistent_gang_order_deadlocks_devices() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 2);
        let coll = |tag| CollectiveOp {
            kind: CollectiveKind::AllReduce,
            tag: GangTag(tag),
            participants: 2,
            duration: SimDuration::ZERO,
        };
        // Opposite enqueue orders on the two devices.
        devs[0].enqueue(EnqueuedKernel {
            kernel: Kernel::compute("a", SimDuration::ZERO).with_collective(coll(1)),
            program: "p1".into(),
            inputs_ready: vec![],
            done: None,
        });
        devs[0].enqueue(EnqueuedKernel {
            kernel: Kernel::compute("b", SimDuration::ZERO).with_collective(coll(2)),
            program: "p2".into(),
            inputs_ready: vec![],
            done: None,
        });
        devs[1].enqueue(EnqueuedKernel {
            kernel: Kernel::compute("b", SimDuration::ZERO).with_collective(coll(2)),
            program: "p2".into(),
            inputs_ready: vec![],
            done: None,
        });
        devs[1].enqueue(EnqueuedKernel {
            kernel: Kernel::compute("a", SimDuration::ZERO).with_collective(coll(1)),
            program: "p1".into(),
            inputs_ready: vec![],
            done: None,
        });
        drop(devs);
        let out = sim.run();
        assert!(out.is_deadlock(), "expected device deadlock, got {out:?}");
    }

    #[test]
    fn stats_account_busy_time_per_program() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        drop(d.enqueue_simple(Kernel::compute("k", SimDuration::from_micros(10)), "alpha"));
        drop(d.enqueue_simple(Kernel::compute("k", SimDuration::from_micros(20)), "beta"));
        drop(d.enqueue_simple(Kernel::compute("k", SimDuration::from_micros(30)), "alpha"));
        drop(devs);
        sim.run_to_quiescence();
        let st = d.stats();
        assert_eq!(st.kernels, 3);
        assert_eq!(st.busy, SimDuration::from_micros(60));
        assert_eq!(st.busy_by_program["alpha"], SimDuration::from_micros(40));
        assert_eq!(st.busy_by_program["beta"], SimDuration::from_micros(20));
    }

    #[test]
    fn trace_spans_cover_busy_time() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        drop(d.enqueue_simple(Kernel::compute("k", SimDuration::from_micros(10)), "A"));
        drop(devs);
        drop(d);
        sim.run_to_quiescence();
        let trace = sim.take_trace();
        let spans = trace.track("d0000");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration(), SimDuration::from_micros(10));
        assert_eq!(spans[0].label, "A");
    }

    #[test]
    fn dropped_input_sender_counts_as_ready() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        let (in_tx, in_rx) = channel::oneshot::<()>();
        drop(in_tx); // producer was garbage-collected
        let (done_tx, done_rx) = channel::oneshot();
        d.enqueue(EnqueuedKernel {
            kernel: Kernel::compute("k", SimDuration::from_micros(1)),
            program: "p".into(),
            inputs_ready: vec![in_rx],
            done: Some(done_tx),
        });
        let probe = sim.spawn("probe", async move { done_rx.await.is_ok() });
        drop(devs);
        drop(d);
        sim.run_to_quiescence();
        assert!(probe.try_take().unwrap());
    }
}
