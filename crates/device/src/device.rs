//! The simulated accelerator proper.
//!
//! A device is a single in-order, non-preemptible kernel queue (Appendix
//! A.5: TPUs "are restricted to run a single program at a time, with no
//! local pre-emption"). Work is enqueued asynchronously — the enqueueing
//! host never blocks — and each kernel:
//!
//! 1. waits for its input buffers to be ready (futures, §4.4),
//! 2. runs its gang collective, blocking the queue until every
//!    participant reaches the same collective,
//! 3. computes for its statically-known duration.
//!
//! The device records a trace span per kernel and per-program busy time,
//! which the multi-tenancy experiments (Figures 8, 9, 11) read back.

use pathways_sim::Lock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use pathways_net::DeviceId;
use pathways_sim::channel::{self, OneshotReceiver, OneshotSender, Sender};
use pathways_sim::{FaultSignal, SimDuration, SimHandle, SimTime};

use crate::gang::CollectiveRendezvous;
use crate::hbm::HbmPool;
use crate::kernel::Kernel;

/// Error returned by [`DeviceHandle::enqueue`] when the device has
/// failed (fault injection) or its queue task has exited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDead {
    /// The dead device.
    pub device: DeviceId,
    /// Why it died, when a fault stamp is available.
    pub reason: Option<String>,
}

impl fmt::Display for DeviceDead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            Some(r) => write!(f, "{} is dead ({r})", self.device),
            None => write!(f, "{} has shut down", self.device),
        }
    }
}

impl std::error::Error for DeviceDead {}

/// Configuration of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// HBM capacity in bytes. The paper's T5 experiments use TPUv3 with
    /// 16 GiB per core.
    pub hbm_capacity: u64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            hbm_capacity: 16 << 30,
        }
    }
}

/// Completion record delivered when a kernel finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCompletion {
    /// When the kernel reached the head of the queue.
    pub dequeued: SimTime,
    /// When the kernel finished.
    pub finished: SimTime,
}

/// One enqueued unit of work.
pub struct EnqueuedKernel {
    /// The kernel to run.
    pub kernel: Kernel,
    /// Owning program label (used for traces and per-program accounting).
    pub program: String,
    /// Input-readiness futures; the kernel starts only after all resolve.
    /// A dropped sender counts as ready (the producer was cleaned up; the
    /// data was already in HBM).
    pub inputs_ready: Vec<OneshotReceiver<()>>,
    /// Completion notification; dropped silently if the receiver is gone.
    pub done: Option<OneshotSender<KernelCompletion>>,
    /// Owning run id for gang-abort bookkeeping (0 = none/unknown).
    /// Carried to the rendezvous so a run failure aborts its gangs even
    /// when some members' grants were lost before enqueue.
    pub owner: u64,
}

impl fmt::Debug for EnqueuedKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnqueuedKernel")
            .field("kernel", &self.kernel.label)
            .field("program", &self.program)
            .field("inputs", &self.inputs_ready.len())
            .finish()
    }
}

/// Aggregate statistics of one device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Kernels executed to completion.
    pub kernels: u64,
    /// Total busy time (collective wire time + compute), excluding time
    /// spent waiting for inputs or for gang partners.
    pub busy: SimDuration,
    /// Busy time per program label.
    pub busy_by_program: BTreeMap<String, SimDuration>,
}

/// Handle for enqueueing work onto a spawned device.
#[derive(Clone)]
pub struct DeviceHandle {
    id: DeviceId,
    tx: Sender<EnqueuedKernel>,
    hbm: HbmPool,
    stats: Arc<Lock<DeviceStats>>,
    fault: FaultSignal,
    rendezvous: CollectiveRendezvous,
}

impl fmt::Debug for DeviceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceHandle")
            .field("id", &self.id)
            .field("hbm_free", &self.hbm.free())
            .finish()
    }
}

impl DeviceHandle {
    /// Spawns the device task onto the simulation and returns its handle.
    ///
    /// `rendezvous` must be shared by all devices that will participate
    /// in collectives together (one per island).
    pub fn spawn(
        sim: &SimHandle,
        id: DeviceId,
        rendezvous: CollectiveRendezvous,
        config: DeviceConfig,
    ) -> DeviceHandle {
        let (tx, mut rx) = channel::channel::<EnqueuedKernel>();
        let hbm = HbmPool::new(config.hbm_capacity);
        let stats = Arc::new(Lock::new(DeviceStats::default()));
        let stats_task = Arc::clone(&stats);
        let handle = sim.clone();
        let fault = FaultSignal::new();
        let fault_task = fault.clone();
        let rz_task = rendezvous.clone();
        let token = pathways_sim::IdleToken::new();
        let token_task = token.clone();
        sim.spawn_service(format!("{id}"), &token, async move {
            loop {
                token_task.set_idle();
                let Some(job) = rx.recv().await else { break };
                token_task.set_busy();
                // 0. A dead device stops accepting work: abort this job
                //    and everything queued behind it, then exit. Aborted
                //    jobs drop their completion sender, which downstream
                //    code observes as a typed kernel abort.
                if fault_task.is_failed() {
                    drop(job);
                    while let Ok(late) = rx.try_recv() {
                        drop(late);
                    }
                    break;
                }
                // 1. Wait for inputs (dropped producers count as ready).
                for input in job.inputs_ready {
                    let _ = input.await;
                }
                // Death may have struck while we waited for inputs.
                if fault_task.is_failed() {
                    drop(job.done);
                    while let Ok(late) = rx.try_recv() {
                        drop(late);
                    }
                    break;
                }
                let dequeued = handle.now();
                // 2. Gang collective: blocks the whole queue until every
                //    participant arrives at the same tag. A gang that
                //    includes a dead device aborts instead of blocking;
                //    the device itself survives and moves on.
                if let Some(c) = &job.kernel.collective {
                    if rz_task
                        .arrive(c.tag, c.participants, c.duration, &c.devices, job.owner)
                        .await
                        .is_err()
                    {
                        drop(job.done);
                        continue;
                    }
                }
                // 3. Statically-known compute time. A kernel that reached
                //    its compute phase retires even if the fault fires
                //    mid-sleep (death takes effect at kernel boundaries).
                handle.sleep(job.kernel.compute).await;
                let finished = handle.now();
                let busy = job.kernel.min_duration();
                {
                    let mut st = stats_task.lock();
                    st.kernels += 1;
                    st.busy += busy;
                    *st.busy_by_program.entry(job.program.clone()).or_default() += busy;
                }
                handle.trace_span(
                    format!("d{:04}", id.0),
                    job.program.clone(),
                    finished - busy,
                    finished,
                );
                if let Some(done) = job.done {
                    let _ = done.send(KernelCompletion { dequeued, finished });
                }
            }
        });
        DeviceHandle {
            id,
            tx,
            hbm,
            stats,
            fault,
            rendezvous,
        }
    }

    /// This device's id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device's HBM pool (used by object stores for reservations).
    pub fn hbm(&self) -> &HbmPool {
        &self.hbm
    }

    /// The collective rendezvous this device participates in.
    pub fn rendezvous(&self) -> &CollectiveRendezvous {
        &self.rendezvous
    }

    /// This device's fault signal (fired by [`DeviceHandle::fail`]).
    pub fn fault(&self) -> &FaultSignal {
        &self.fault
    }

    /// True once the device has been failed.
    pub fn is_failed(&self) -> bool {
        self.fault.is_failed()
    }

    /// Kills the device at virtual time `at`: it stops accepting work
    /// ([`DeviceHandle::enqueue`] errors), aborts its queued kernels the
    /// next time its task runs, and gangs that include it abort at the
    /// rendezvous instead of blocking forever.
    pub fn fail(&self, at: SimTime, reason: impl Into<String>) {
        self.fault.fire(at, reason);
        self.rendezvous.mark_dead(self.id);
    }

    /// Enqueues a kernel; returns immediately (asynchronous dispatch).
    ///
    /// # Errors
    ///
    /// [`DeviceDead`] if the device has been failed or its queue task has
    /// exited. The job (and its completion sender) is dropped, so anyone
    /// holding the completion receiver observes the abort.
    pub fn enqueue(&self, job: EnqueuedKernel) -> Result<(), DeviceDead> {
        if self.fault.is_failed() {
            return Err(DeviceDead {
                device: self.id,
                reason: self.fault.stamp().map(|s| s.reason),
            });
        }
        self.tx.send(job).map_err(|_| DeviceDead {
            device: self.id,
            reason: None,
        })
    }

    /// Convenience: enqueue a kernel with no inputs and return its
    /// completion future. If the device is dead, the returned future
    /// resolves to a receive error (the abort signal).
    pub fn enqueue_simple(
        &self,
        kernel: Kernel,
        program: impl Into<String>,
    ) -> OneshotReceiver<KernelCompletion> {
        let (tx, rx) = channel::oneshot();
        let _ = self.enqueue(EnqueuedKernel {
            kernel,
            program: program.into(),
            inputs_ready: Vec::new(),
            done: Some(tx),
            owner: 0,
        });
        rx
    }

    /// Snapshot of the device's statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{CollectiveOp, GangTag};
    use pathways_net::CollectiveKind;
    use pathways_sim::Sim;

    fn spawn_devices(sim: &Sim, n: u32) -> Vec<DeviceHandle> {
        let rz = CollectiveRendezvous::new(sim.handle());
        (0..n)
            .map(|i| {
                DeviceHandle::spawn(
                    &sim.handle(),
                    DeviceId(i),
                    rz.clone(),
                    DeviceConfig::default(),
                )
            })
            .collect()
    }

    #[test]
    fn kernels_execute_in_enqueue_order() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        let r1 = d.enqueue_simple(Kernel::compute("k1", SimDuration::from_micros(10)), "p");
        let r2 = d.enqueue_simple(Kernel::compute("k2", SimDuration::from_micros(5)), "p");
        let probe = sim.spawn("probe", async move {
            let c1 = r1.await.unwrap();
            let c2 = r2.await.unwrap();
            (c1, c2)
        });
        drop(devs);
        sim.run_to_quiescence();
        let (c1, c2) = probe.try_take().unwrap();
        assert_eq!(c1.finished.as_nanos(), 10_000);
        // k2 runs only after k1 despite being shorter.
        assert_eq!(c2.finished.as_nanos(), 15_000);
    }

    #[test]
    fn kernel_waits_for_inputs() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        let (in_tx, in_rx) = channel::oneshot();
        let (done_tx, done_rx) = channel::oneshot();
        d.enqueue(EnqueuedKernel {
            kernel: Kernel::compute("k", SimDuration::from_micros(10)),
            program: "p".into(),
            inputs_ready: vec![in_rx],
            done: Some(done_tx),
            owner: 0,
        })
        .unwrap();
        let h = sim.handle();
        sim.spawn("producer", async move {
            h.sleep(SimDuration::from_micros(100)).await;
            let _ = in_tx.send(());
        });
        let probe = sim.spawn("probe", async move { done_rx.await.unwrap() });
        drop(devs);
        sim.run_to_quiescence();
        let c = probe.try_take().unwrap();
        assert_eq!(c.dequeued.as_nanos(), 100_000);
        assert_eq!(c.finished.as_nanos(), 110_000);
    }

    #[test]
    fn gang_collective_aligns_devices() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 2);
        let coll = |tag| CollectiveOp {
            kind: CollectiveKind::AllReduce,
            tag: GangTag(tag),
            participants: 2,
            duration: SimDuration::from_micros(3),
            devices: vec![],
        };
        // Device 0 is delayed by a long kernel first.
        drop(devs[0].enqueue_simple(Kernel::compute("slow", SimDuration::from_micros(50)), "p"));
        let r0 = devs[0].enqueue_simple(
            Kernel::compute("c", SimDuration::from_micros(1)).with_collective(coll(1)),
            "p",
        );
        let r1 = devs[1].enqueue_simple(
            Kernel::compute("c", SimDuration::from_micros(1)).with_collective(coll(1)),
            "p",
        );
        let probe = sim.spawn(
            "probe",
            async move { (r0.await.unwrap(), r1.await.unwrap()) },
        );
        drop(devs);
        sim.run_to_quiescence();
        let (c0, c1) = probe.try_take().unwrap();
        // Both finish together: 50us wait + 3us collective + 1us compute.
        assert_eq!(c0.finished.as_nanos(), 54_000);
        assert_eq!(c1.finished.as_nanos(), 54_000);
    }

    #[test]
    fn inconsistent_gang_order_deadlocks_devices() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 2);
        let coll = |tag| CollectiveOp {
            kind: CollectiveKind::AllReduce,
            tag: GangTag(tag),
            participants: 2,
            duration: SimDuration::ZERO,
            devices: vec![],
        };
        // Opposite enqueue orders on the two devices.
        devs[0]
            .enqueue(EnqueuedKernel {
                kernel: Kernel::compute("a", SimDuration::ZERO).with_collective(coll(1)),
                program: "p1".into(),
                inputs_ready: vec![],
                done: None,
                owner: 0,
            })
            .unwrap();
        devs[0]
            .enqueue(EnqueuedKernel {
                kernel: Kernel::compute("b", SimDuration::ZERO).with_collective(coll(2)),
                program: "p2".into(),
                inputs_ready: vec![],
                done: None,
                owner: 0,
            })
            .unwrap();
        devs[1]
            .enqueue(EnqueuedKernel {
                kernel: Kernel::compute("b", SimDuration::ZERO).with_collective(coll(2)),
                program: "p2".into(),
                inputs_ready: vec![],
                done: None,
                owner: 0,
            })
            .unwrap();
        devs[1]
            .enqueue(EnqueuedKernel {
                kernel: Kernel::compute("a", SimDuration::ZERO).with_collective(coll(1)),
                program: "p1".into(),
                inputs_ready: vec![],
                done: None,
                owner: 0,
            })
            .unwrap();
        drop(devs);
        let out = sim.run();
        assert!(out.is_deadlock(), "expected device deadlock, got {out:?}");
    }

    #[test]
    fn stats_account_busy_time_per_program() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        drop(d.enqueue_simple(Kernel::compute("k", SimDuration::from_micros(10)), "alpha"));
        drop(d.enqueue_simple(Kernel::compute("k", SimDuration::from_micros(20)), "beta"));
        drop(d.enqueue_simple(Kernel::compute("k", SimDuration::from_micros(30)), "alpha"));
        drop(devs);
        sim.run_to_quiescence();
        let st = d.stats();
        assert_eq!(st.kernels, 3);
        assert_eq!(st.busy, SimDuration::from_micros(60));
        assert_eq!(st.busy_by_program["alpha"], SimDuration::from_micros(40));
        assert_eq!(st.busy_by_program["beta"], SimDuration::from_micros(20));
    }

    #[test]
    fn trace_spans_cover_busy_time() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        drop(d.enqueue_simple(Kernel::compute("k", SimDuration::from_micros(10)), "A"));
        drop(devs);
        drop(d);
        sim.run_to_quiescence();
        let trace = sim.take_trace();
        let spans = trace.track("d0000");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration(), SimDuration::from_micros(10));
        assert_eq!(spans[0].label, "A");
    }

    #[test]
    fn dropped_input_sender_counts_as_ready() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        let (in_tx, in_rx) = channel::oneshot::<()>();
        drop(in_tx); // producer was garbage-collected
        let (done_tx, done_rx) = channel::oneshot();
        d.enqueue(EnqueuedKernel {
            kernel: Kernel::compute("k", SimDuration::from_micros(1)),
            program: "p".into(),
            inputs_ready: vec![in_rx],
            done: Some(done_tx),
            owner: 0,
        })
        .unwrap();
        let probe = sim.spawn("probe", async move { done_rx.await.is_ok() });
        drop(devs);
        drop(d);
        sim.run_to_quiescence();
        assert!(probe.try_take().unwrap());
    }

    #[test]
    fn enqueue_to_dead_device_returns_error_not_panic() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        d.fail(sim.now(), "scripted fault");
        assert!(d.is_failed());
        let err = d
            .enqueue(EnqueuedKernel {
                kernel: Kernel::compute("k", SimDuration::from_micros(1)),
                program: "p".into(),
                inputs_ready: vec![],
                done: None,
                owner: 0,
            })
            .unwrap_err();
        assert_eq!(err.device, DeviceId(0));
        assert_eq!(err.reason.as_deref(), Some("scripted fault"));
        drop(devs);
        drop(d);
        assert!(sim.run().is_quiescent());
    }

    #[test]
    fn death_aborts_queued_kernels() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 1);
        let d = devs[0].clone();
        // A long kernel followed by a queued one; the fault fires while
        // the first computes, so the first retires and the second aborts.
        let r1 = d.enqueue_simple(Kernel::compute("k1", SimDuration::from_micros(50)), "p");
        let r2 = d.enqueue_simple(Kernel::compute("k2", SimDuration::from_micros(50)), "p");
        let d2 = d.clone();
        let h = sim.handle();
        sim.spawn("fault", async move {
            h.sleep(SimDuration::from_micros(10)).await;
            d2.fail(h.now(), "mid-flight death");
        });
        let probe = sim.spawn("probe", async move { (r1.await, r2.await) });
        drop(devs);
        drop(d);
        sim.run_to_quiescence();
        let (c1, c2) = probe.try_take().unwrap();
        assert_eq!(c1.unwrap().finished.as_nanos(), 50_000, "in-flight retires");
        assert!(c2.is_err(), "queued kernel must abort, not run");
    }

    #[test]
    fn gang_with_dead_member_aborts_but_device_survives() {
        let mut sim = Sim::new(0);
        let devs = spawn_devices(&sim, 2);
        let gang = vec![DeviceId(0), DeviceId(1)];
        let coll = CollectiveOp {
            kind: CollectiveKind::AllReduce,
            tag: GangTag(1),
            participants: 2,
            duration: SimDuration::from_micros(3),
            devices: gang,
        };
        devs[1].fail(sim.now(), "dead partner");
        let r0 = devs[0].enqueue_simple(
            Kernel::compute("c", SimDuration::from_micros(1)).with_collective(coll),
            "p",
        );
        // A plain kernel queued behind the doomed gang still runs.
        let r_after =
            devs[0].enqueue_simple(Kernel::compute("k", SimDuration::from_micros(5)), "p");
        let probe = sim.spawn("probe", async move { (r0.await, r_after.await) });
        drop(devs);
        sim.run_to_quiescence();
        let (gang_result, after) = probe.try_take().unwrap();
        assert!(gang_result.is_err(), "gang must abort");
        assert_eq!(after.unwrap().finished.as_nanos(), 5_000);
    }
}
