//! Per-device HBM capacity accounting with back-pressure.
//!
//! §4.6 of the paper: *"We can use simple back-pressure to stall a
//! computation if it cannot allocate memory because other computations'
//! buffers are temporarily occupying HBM."* An [`HbmPool`] is a byte
//! semaphore: allocations wait FIFO-fairly until capacity frees up, and
//! leases return capacity on drop.

use std::fmt;

use pathways_sim::sync::{Permit, Semaphore};

/// Byte-granular HBM capacity for one device.
#[derive(Clone)]
pub struct HbmPool {
    capacity: u64,
    sem: Semaphore,
}

impl fmt::Debug for HbmPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HbmPool")
            .field("capacity", &self.capacity)
            .field("free", &self.sem.available())
            .finish()
    }
}

impl HbmPool {
    /// Creates a pool of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        HbmPool {
            capacity,
            sem: Semaphore::new(capacity),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.sem.available()
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.capacity - self.sem.available()
    }

    /// Number of allocations stalled on back-pressure.
    pub fn stalled(&self) -> usize {
        self.sem.waiters()
    }

    /// Allocates `bytes`, waiting (back-pressure) until capacity frees.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the pool capacity — the allocation could
    /// never succeed, which is a program bug, not back-pressure.
    pub async fn allocate(&self, bytes: u64) -> HbmLease {
        assert!(
            bytes <= self.capacity,
            "allocation of {bytes} B exceeds HBM capacity {} B",
            self.capacity
        );
        let permit = self.sem.acquire(bytes).await;
        HbmLease { permit }
    }

    /// Allocates without waiting, or `None` if it would stall.
    pub fn try_allocate(&self, bytes: u64) -> Option<HbmLease> {
        if bytes > self.capacity {
            return None;
        }
        self.sem
            .try_acquire(bytes)
            .map(|permit| HbmLease { permit })
    }
}

/// RAII lease over HBM bytes; frees on drop.
#[derive(Debug)]
pub struct HbmLease {
    permit: Permit,
}

impl HbmLease {
    /// Bytes held.
    pub fn bytes(&self) -> u64 {
        self.permit.amount()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathways_sim::{Sim, SimDuration};

    #[test]
    fn accounting_tracks_allocations() {
        let mut sim = Sim::new(0);
        let pool = HbmPool::new(1_000);
        let p2 = pool.clone();
        let h = sim.handle();
        sim.spawn("alloc", async move {
            let a = p2.allocate(300).await;
            assert_eq!(p2.used(), 300);
            let b = p2.allocate(700).await;
            assert_eq!(p2.free(), 0);
            drop(a);
            assert_eq!(p2.free(), 300);
            h.sleep(SimDuration::from_micros(1)).await;
            drop(b);
        });
        sim.run_to_quiescence();
        assert_eq!(pool.free(), 1_000);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn back_pressure_stalls_until_release() {
        let mut sim = Sim::new(0);
        let pool = HbmPool::new(100);
        let p1 = pool.clone();
        let h1 = sim.handle();
        sim.spawn("first", async move {
            let lease = p1.allocate(80).await;
            h1.sleep(SimDuration::from_micros(50)).await;
            drop(lease);
        });
        let p2 = pool.clone();
        let h2 = sim.handle();
        let second = sim.spawn("second", async move {
            h2.sleep(SimDuration::from_micros(1)).await;
            let _lease = p2.allocate(50).await; // must wait for `first`
            h2.now().as_nanos()
        });
        sim.run_to_quiescence();
        assert_eq!(second.try_take().unwrap(), 50_000);
    }

    #[test]
    fn try_allocate_never_stalls() {
        let pool = HbmPool::new(10);
        let lease = pool.try_allocate(10).unwrap();
        assert!(pool.try_allocate(1).is_none());
        drop(lease);
        assert!(pool.try_allocate(1).is_some());
        assert!(pool.try_allocate(11).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds HBM capacity")]
    fn oversized_allocation_panics() {
        let mut sim = Sim::new(0);
        let pool = HbmPool::new(10);
        sim.spawn("big", async move {
            let _ = pool.allocate(11).await;
        });
        sim.run_to_quiescence();
    }
}
