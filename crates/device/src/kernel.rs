//! Compiled-function kernel descriptors.
//!
//! §3 and Appendix B of the paper define a "compiled function" as a
//! computation whose input/output types, shapes, loop bounds and hence
//! *resource requirements are known in advance*. That static knowledge is
//! what enables parallel asynchronous dispatch (§4.5). A [`Kernel`] is
//! the executable form of one shard of a compiled function: a compute
//! duration, an optional gang collective, and declared memory traffic.

use serde::{Deserialize, Serialize};

use pathways_net::{CollectiveKind, DeviceId};
use pathways_sim::SimDuration;

/// Unique tag identifying one *instance* of a gang collective: every
/// participant enqueues a kernel carrying the same tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GangTag(pub u64);

impl std::fmt::Display for GangTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gang{}", self.0)
    }
}

/// A collective embedded in a kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveOp {
    /// Which collective pattern.
    pub kind: CollectiveKind,
    /// Instance tag; all participants must agree.
    pub tag: GangTag,
    /// Number of participating devices.
    pub participants: u32,
    /// Wire time of the collective (precomputed from the fabric's cost
    /// model by the code constructing the kernel).
    pub duration: SimDuration,
    /// The gang's device membership, when the enqueueing control plane
    /// knows it (the scheduler's grant carries the full list). Used by
    /// the rendezvous to abort gangs that include a dead device instead
    /// of blocking forever. An empty list opts out of failure detection.
    pub devices: Vec<DeviceId>,
}

/// One shard of a compiled function, ready to enqueue on a device.
///
/// Execution order within a kernel: wait for inputs, run the collective
/// (if any), then compute for `compute` — matching a fused XLA program
/// that starts with a cross-replica sum (the paper's micro-benchmark
/// computation is "a single scalar AllReduce followed by a scalar
/// addition").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Human-readable label; first character is used in trace renderings.
    pub label: String,
    /// Pure compute time on the device.
    pub compute: SimDuration,
    /// Optional gang collective executed before the compute phase.
    pub collective: Option<CollectiveOp>,
    /// Bytes of HBM the kernel's outputs occupy (informational; actual
    /// reservation is done by the object store before enqueue).
    pub output_bytes: u64,
}

impl Kernel {
    /// A pure-compute kernel.
    pub fn compute(label: impl Into<String>, compute: SimDuration) -> Self {
        Kernel {
            label: label.into(),
            compute,
            collective: None,
            output_bytes: 0,
        }
    }

    /// Adds a collective phase (builder style).
    #[must_use]
    pub fn with_collective(mut self, op: CollectiveOp) -> Self {
        self.collective = Some(op);
        self
    }

    /// Sets declared output bytes (builder style).
    #[must_use]
    pub fn with_output_bytes(mut self, bytes: u64) -> Self {
        self.output_bytes = bytes;
        self
    }

    /// Lower bound on device occupancy (compute + collective wire time);
    /// actual occupancy can be longer if the gang has to wait for
    /// stragglers.
    pub fn min_duration(&self) -> SimDuration {
        self.compute
            + self
                .collective
                .as_ref()
                .map_or(SimDuration::ZERO, |c| c.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let k = Kernel::compute("fwd", SimDuration::from_micros(100))
            .with_collective(CollectiveOp {
                kind: CollectiveKind::AllReduce,
                tag: GangTag(7),
                participants: 8,
                duration: SimDuration::from_micros(20),
                devices: vec![],
            })
            .with_output_bytes(1024);
        assert_eq!(k.min_duration(), SimDuration::from_micros(120));
        assert_eq!(k.output_bytes, 1024);
        assert_eq!(k.collective.as_ref().unwrap().tag, GangTag(7));
    }

    #[test]
    fn pure_compute_min_duration() {
        let k = Kernel::compute("x", SimDuration::from_millis(1));
        assert_eq!(k.min_duration(), SimDuration::from_millis(1));
        assert!(k.collective.is_none());
    }
}
