//! # pathways-device
//!
//! A simulated TPU-like accelerator for the Pathways reproduction.
//!
//! What matters for the paper's arguments is not what a TPU computes but
//! *how it schedules*: one in-order non-preemptible kernel queue per
//! device, gang collectives that block the queue until every participant
//! arrives (so inconsistent enqueue orders deadlock, §2), statically
//! known resource requirements for compiled functions (§3, Appendix B),
//! and HBM capacity with back-pressure (§4.6). This crate implements
//! exactly those semantics over the virtual-time executor.
//!
//! ## Example
//!
//! ```
//! use pathways_device::{CollectiveRendezvous, DeviceConfig, DeviceHandle, Kernel};
//! use pathways_net::DeviceId;
//! use pathways_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(0);
//! let rz = CollectiveRendezvous::new(sim.handle());
//! let dev = DeviceHandle::spawn(&sim.handle(), DeviceId(0), rz, DeviceConfig::default());
//! let done = dev.enqueue_simple(Kernel::compute("step", SimDuration::from_millis(1)), "demo");
//! let probe = sim.spawn("probe", async move { done.await.unwrap() });
//! drop(dev);
//! sim.run_to_quiescence();
//! assert_eq!(probe.try_take().unwrap().finished.as_nanos(), 1_000_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device;
mod gang;
mod hbm;
mod kernel;

pub use device::{
    DeviceConfig, DeviceDead, DeviceHandle, DeviceStats, EnqueuedKernel, KernelCompletion,
};
pub use gang::{CollectiveRendezvous, GangAborted};
pub use hbm::{HbmLease, HbmPool};
pub use kernel::{CollectiveOp, GangTag, Kernel};
