//! TensorFlow-v1-like single-controller baseline (§2, Figure 1b/1c).
//!
//! A coordinator builds the graph and drives workers over the DCN. Two
//! properties the paper calls out are modelled faithfully:
//!
//! * **a centralized barrier serializes gang-scheduled computations**:
//!   the coordinator dispatches step `k+1` only after every worker
//!   reported step `k` complete (control edges), so dispatch latency is
//!   never overlapped with execution;
//! * **no device object store**: results are transferred back to the
//!   client after every client call, paying DCN bandwidth.

use pathways_sim::hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

use pathways_device::{
    CollectiveOp, CollectiveRendezvous, DeviceConfig, DeviceHandle, GangTag, Kernel,
};
use pathways_net::{
    ClusterSpec, CollectiveKind, DeviceId, Envelope, Fabric, HostId, NetworkParams, Router,
    Topology,
};
use pathways_sim::{IdleToken, Sim, SimDuration, SimHandle};

use crate::workload::{StepWorkload, SubmissionMode, Throughput};

/// Tunables of the TF1-like baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tf1Config {
    /// Client-side session-run overhead per call.
    pub session_overhead: SimDuration,
    /// Worker-side graph-executor overhead per step: TF1 walks the
    /// dataflow graph interpretively, dispatching send/recv and compute
    /// ops node by node (§2's "host side work at the destination ...
    /// triggered only after the transfer is completed"). Because every
    /// step ends at the centralized barrier, this cost is never
    /// overlapped.
    pub worker_step_overhead: SimDuration,
    /// Bytes of result data copied back to the client per call.
    pub result_bytes: u64,
    /// HBM per device.
    pub hbm_per_device: u64,
}

impl Default for Tf1Config {
    fn default() -> Self {
        Tf1Config {
            session_overhead: SimDuration::from_micros(50),
            worker_step_overhead: SimDuration::from_micros(100),
            result_bytes: 4 << 10,
            hbm_per_device: 16 << 30,
        }
    }
}

enum WorkerMsg {
    /// Run one step with this gang tag.
    Run { tag: u64 },
    /// Worker finished its step (sent to the coordinator).
    Done,
    /// Result payload back to the client (modelled by message size).
    Result,
    /// Tear down.
    Stop,
}

/// The single-controller runtime.
pub struct Tf1Runtime {
    handle: SimHandle,
    topo: Arc<Topology>,
    fabric: Fabric,
    devices: FxHashMap<DeviceId, DeviceHandle>,
    cfg: Tf1Config,
}

/// Router address of the coordinator/client inbox (outside the host id
/// space so it never collides with a worker registration).
const COORD_ADDR: HostId = HostId(u32::MAX - 1);

impl fmt::Debug for Tf1Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tf1Runtime")
            .field("devices", &self.devices.len())
            .finish()
    }
}

impl Tf1Runtime {
    /// Builds the baseline over a fresh cluster.
    pub fn new(sim: &Sim, spec: ClusterSpec, net: NetworkParams, cfg: Tf1Config) -> Self {
        let handle = sim.handle();
        let topo = Arc::new(spec.build());
        let fabric = Fabric::new(handle.clone(), Arc::clone(&topo), net);
        let rz = CollectiveRendezvous::new(handle.clone());
        let devices = topo
            .devices()
            .map(|d| {
                (
                    d,
                    DeviceHandle::spawn(
                        &handle,
                        d,
                        rz.clone(),
                        DeviceConfig {
                            hbm_capacity: cfg.hbm_per_device,
                        },
                    ),
                )
            })
            .collect();
        Tf1Runtime {
            handle,
            topo,
            fabric,
            devices,
            cfg,
        }
    }

    /// Runs the benchmark; the coordinator lives on host 0.
    pub fn spawn_benchmark(
        &self,
        sim: &mut Sim,
        mode: SubmissionMode,
        workload: StepWorkload,
        total_computations: u64,
    ) -> pathways_sim::JoinHandle<Throughput> {
        let participants = self.topo.num_devices();
        let all: Vec<DeviceId> = self.topo.devices().collect();
        let coll = self.fabric.ici_collective_time(
            CollectiveKind::AllReduce,
            &all,
            workload.allreduce_bytes,
        );
        let cfg = self.cfg;
        let topo = Arc::clone(&self.topo);
        let handle = self.handle.clone();
        let router: Router<WorkerMsg> = Router::new(self.fabric.clone());
        let coordinator_host = topo
            .hosts_of_island(pathways_net::IslandId(0))
            .next()
            .expect("island has hosts");

        // Per mode: how many barrier-separated *steps* one client call
        // performs, and the kernel run per step.
        let chain = workload.chain_len as u64;
        let (calls, steps_per_call, comps_per_step, kernel) = match mode {
            SubmissionMode::OpByOp => (
                total_computations,
                1u64,
                1u64,
                Kernel::compute("step", workload.compute),
            ),
            SubmissionMode::Chained => (
                total_computations / chain,
                chain,
                1,
                Kernel::compute("step", workload.compute),
            ),
            SubmissionMode::Fused => (
                total_computations / chain,
                1,
                chain,
                Kernel::compute(
                    "fused",
                    (workload.compute + coll) * (chain - 1) + workload.compute,
                ),
            ),
        };

        // Worker tasks: run a step on all local devices when told.
        let mut worker_hosts = Vec::new();
        for host in topo.hosts() {
            worker_hosts.push(host);
            let mut inbox = router.register(host);
            let router2 = router.clone();
            let fabric = self.fabric.clone();
            let local: Vec<DeviceHandle> = topo
                .devices_of_host(host)
                .map(|d| self.devices[&d].clone())
                .collect();
            let token = IdleToken::new();
            let token2 = token.clone();
            let h = handle.clone();
            handle.spawn_service(format!("tf-worker-{host}"), &token, {
                let kernel = kernel.clone();
                async move {
                    loop {
                        token2.set_idle();
                        let Some(Envelope { msg, .. }) = inbox.recv().await else {
                            break;
                        };
                        token2.set_busy();
                        match msg {
                            WorkerMsg::Run { tag } => {
                                // Interpretive graph-executor dispatch.
                                h.sleep(cfg.worker_step_overhead).await;
                                let k = kernel.clone().with_collective(CollectiveOp {
                                    kind: CollectiveKind::AllReduce,
                                    tag: GangTag(tag),
                                    participants,
                                    duration: coll,
                                    devices: vec![],
                                });
                                let mut dones = Vec::new();
                                for dev in &local {
                                    fabric.pcie_enqueue(host).await;
                                    dones.push(dev.enqueue_simple(k.clone(), "tf"));
                                }
                                for d in dones {
                                    let _ = d.await;
                                }
                                router2.send(host, COORD_ADDR, WorkerMsg::Done, 64);
                            }
                            WorkerMsg::Stop => break,
                            _ => {}
                        }
                    }
                }
            });
        }

        // Coordinator + client live on host 0's machine but get their
        // own inbox address (a host's router registration is exclusive
        // and host 0 already runs a worker).
        let mut coord_inbox = router.register(COORD_ADDR);
        let router2 = router.clone();
        let h = handle.clone();
        let n_hosts = worker_hosts.len() as u64;
        let executed = calls * steps_per_call * comps_per_step;
        sim.spawn("tf-coordinator", async move {
            let start = h.now();
            for _call in 0..calls {
                // Client session.run() entry.
                h.sleep(cfg.session_overhead).await;
                for step in 0..steps_per_call {
                    let tag = _call * steps_per_call + step;
                    // Control messages to every worker over DCN,
                    // serialized on the coordinator NIC.
                    for w in &worker_hosts {
                        router2.send(coordinator_host, *w, WorkerMsg::Run { tag }, 256);
                    }
                    // Centralized barrier: wait for every worker before
                    // dispatching the next step.
                    let mut done = 0u64;
                    while done < n_hosts {
                        match coord_inbox.recv().await {
                            Some(Envelope {
                                msg: WorkerMsg::Done,
                                ..
                            }) => done += 1,
                            Some(_) => {}
                            None => {
                                return Throughput {
                                    computations: 0,
                                    elapsed: SimDuration::ZERO,
                                }
                            }
                        }
                    }
                }
                // No device object store: the call's results return to
                // the client over DCN (modelled as one result-sized
                // message from the lead worker's host to the client).
                router2.send(
                    coordinator_host,
                    COORD_ADDR,
                    WorkerMsg::Result,
                    cfg.result_bytes,
                );
                loop {
                    match coord_inbox.recv().await {
                        Some(Envelope {
                            msg: WorkerMsg::Result,
                            ..
                        }) => break,
                        Some(_) => {}
                        None => break,
                    }
                }
            }
            for w in &worker_hosts {
                router2.send(coordinator_host, *w, WorkerMsg::Stop, 16);
            }
            Throughput {
                computations: executed,
                elapsed: h.now().duration_since(start),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(hosts: u32, mode: SubmissionMode, n: u64) -> f64 {
        let mut sim = Sim::new(0);
        let rt = Tf1Runtime::new(
            &sim,
            ClusterSpec::config_b(hosts),
            NetworkParams::tpu_cluster(),
            Tf1Config::default(),
        );
        let m = rt.spawn_benchmark(&mut sim, mode, StepWorkload::trivial(), n);
        sim.run_to_quiescence();
        m.try_take().unwrap().per_sec()
    }

    #[test]
    fn chained_amortizes_client_work() {
        let o = measure(2, SubmissionMode::OpByOp, 256);
        let c = measure(2, SubmissionMode::Chained, 256);
        assert!(c > o, "chained {c}/s should beat op-by-op {o}/s");
    }

    #[test]
    fn fused_amortizes_barriers_too() {
        let c = measure(2, SubmissionMode::Chained, 256);
        let f = measure(2, SubmissionMode::Fused, 256);
        assert!(f >= c, "fused {f}/s should be at least chained {c}/s");
    }

    #[test]
    fn barrier_cost_grows_with_hosts() {
        let small = measure(2, SubmissionMode::Chained, 256);
        let large = measure(32, SubmissionMode::Chained, 256);
        assert!(
            small > large * 1.5,
            "fan-out + barrier should hurt scale: {small}/s vs {large}/s"
        );
    }

    #[test]
    fn completes_without_deadlock() {
        let mut sim = Sim::new(0);
        let rt = Tf1Runtime::new(
            &sim,
            ClusterSpec::config_b(4),
            NetworkParams::tpu_cluster(),
            Tf1Config::default(),
        );
        let m = rt.spawn_benchmark(
            &mut sim,
            SubmissionMode::OpByOp,
            StepWorkload::trivial(),
            32,
        );
        let out = sim.run();
        assert!(out.is_quiescent(), "{out:?}");
        assert_eq!(m.try_take().unwrap().computations, 32);
    }
}
