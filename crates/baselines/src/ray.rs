//! Ray-like actor baseline (§5.1's GPU comparator).
//!
//! Ray v1.3 + PyTorch on one-GPU hosts connected only by the DCN. The
//! properties the paper attributes to Ray's measured overheads are
//! modelled explicitly:
//!
//! * general-purpose Python actors: a per-task overhead far above a C++
//!   enqueue;
//! * **no HBM object store**: each computation's result is copied from
//!   GPU memory to host DRAM over PCIe before its `ObjectRef` resolves;
//! * collectives run over the DCN (no dedicated interconnect), as a
//!   ring all-reduce.

use pathways_sim::hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

use pathways_device::{
    CollectiveOp, CollectiveRendezvous, DeviceConfig, DeviceHandle, GangTag, Kernel,
};
use pathways_net::collective::ring_allreduce;
use pathways_net::{
    ClusterSpec, CollectiveKind, DeviceId, Envelope, Fabric, HostId, NetworkParams, Router,
    Topology,
};
use pathways_sim::{Sim, SimDuration, SimHandle};

use crate::workload::{StepWorkload, SubmissionMode, Throughput};

/// Tunables of the Ray-like baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayConfig {
    /// Driver-side cost to issue one remote call.
    pub driver_call_overhead: SimDuration,
    /// Actor-side per-task overhead (deserialize, Python dispatch).
    pub task_overhead: SimDuration,
    /// PyTorch per-op overhead inside a fused loop.
    pub torch_op_overhead: SimDuration,
    /// Result bytes copied GPU→DRAM per computation.
    pub result_bytes: u64,
    /// GPU memory per device.
    pub hbm_per_device: u64,
}

impl Default for RayConfig {
    fn default() -> Self {
        RayConfig {
            driver_call_overhead: SimDuration::from_micros(30),
            task_overhead: SimDuration::from_micros(300),
            torch_op_overhead: SimDuration::from_micros(15),
            result_bytes: 4 << 10,
            hbm_per_device: 16 << 30,
        }
    }
}

enum ActorMsg {
    /// Run `steps` computations, copying the result to DRAM after each
    /// (Chained) or only at the end (Fused); OpByOp is Chained with
    /// steps = 1.
    Run {
        base_tag: u64,
        steps: u64,
        fused: bool,
    },
    /// Actor finished a Run (sent to the driver).
    Done,
    Stop,
}

/// Router address of the driver inbox.
const DRIVER_ADDR: HostId = HostId(u32::MAX - 2);

/// The Ray-like runtime: one actor + one GPU per host.
pub struct RayRuntime {
    handle: SimHandle,
    topo: Arc<Topology>,
    fabric: Fabric,
    devices: FxHashMap<DeviceId, DeviceHandle>,
    cfg: RayConfig,
}

impl fmt::Debug for RayRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RayRuntime")
            .field("gpus", &self.devices.len())
            .finish()
    }
}

impl RayRuntime {
    /// Builds a Ray-like cluster of `hosts` one-GPU machines.
    pub fn new(sim: &Sim, hosts: u32, net: NetworkParams, cfg: RayConfig) -> Self {
        let handle = sim.handle();
        let topo = Arc::new(ClusterSpec::single_island(hosts, 1).build());
        let fabric = Fabric::new(handle.clone(), Arc::clone(&topo), net);
        let rz = CollectiveRendezvous::new(handle.clone());
        let devices = topo
            .devices()
            .map(|d| {
                (
                    d,
                    DeviceHandle::spawn(
                        &handle,
                        d,
                        rz.clone(),
                        DeviceConfig {
                            hbm_capacity: cfg.hbm_per_device,
                        },
                    ),
                )
            })
            .collect();
        RayRuntime {
            handle,
            topo,
            fabric,
            devices,
            cfg,
        }
    }

    /// DCN ring all-reduce time across all GPUs.
    pub fn allreduce_time(&self, bytes: u64) -> SimDuration {
        let p = self.fabric.params();
        ring_allreduce(self.topo.num_hosts(), bytes, p.dcn_bandwidth, p.dcn_latency)
    }

    /// Runs the benchmark; the driver lives on host 0.
    pub fn spawn_benchmark(
        &self,
        sim: &mut Sim,
        mode: SubmissionMode,
        workload: StepWorkload,
        total_computations: u64,
    ) -> pathways_sim::JoinHandle<Throughput> {
        let participants = self.topo.num_devices();
        let coll = self.allreduce_time(workload.allreduce_bytes);
        let cfg = self.cfg;
        let topo = Arc::clone(&self.topo);
        let handle = self.handle.clone();
        let router: Router<ActorMsg> = Router::new(self.fabric.clone());
        let driver_host = HostId(0);

        let chain = workload.chain_len as u64;
        // (driver calls, steps per call, fused?)
        let (calls, steps_per_call, fused) = match mode {
            SubmissionMode::OpByOp => (total_computations, 1, false),
            SubmissionMode::Chained => (total_computations / chain, chain, false),
            SubmissionMode::Fused => (total_computations / chain, chain, true),
        };

        // Actor tasks.
        let mut actor_hosts = Vec::new();
        for host in topo.hosts() {
            actor_hosts.push(host);
            let mut inbox = router.register(host);
            let router2 = router.clone();
            let fabric = self.fabric.clone();
            let first_dev = topo.devices_of_host(host).next().expect("host has devices");
            let gpu = self.devices[&first_dev].clone();
            let h = handle.clone();
            let token = pathways_sim::IdleToken::new();
            let token2 = token.clone();
            handle.spawn_service(format!("ray-actor-{host}"), &token, async move {
                loop {
                    token2.set_idle();
                    let Some(Envelope { msg, .. }) = inbox.recv().await else {
                        break;
                    };
                    token2.set_busy();
                    match msg {
                        ActorMsg::Run {
                            base_tag,
                            steps,
                            fused,
                        } => {
                            // Actor-side task entry.
                            h.sleep(cfg.task_overhead).await;
                            for s in 0..steps {
                                let per_op = if fused {
                                    cfg.torch_op_overhead
                                } else {
                                    // Non-fused: each step is a separate
                                    // actor-level operation.
                                    cfg.task_overhead
                                };
                                let extra = if s == 0 { SimDuration::ZERO } else { per_op };
                                let k = Kernel::compute("allreduce+add", workload.compute + extra)
                                    .with_collective(CollectiveOp {
                                        kind: CollectiveKind::AllReduce,
                                        tag: GangTag(base_tag + s),
                                        participants,
                                        duration: coll,
                                        devices: vec![],
                                    });
                                let done = gpu.enqueue_simple(k, "ray");
                                let _ = done.await;
                                if !fused {
                                    // No GPU object store: copy the step
                                    // result to DRAM before the
                                    // ObjectRef resolves.
                                    fabric.pcie_transfer(host, gpu.id(), cfg.result_bytes).await;
                                }
                            }
                            if fused {
                                fabric.pcie_transfer(host, gpu.id(), cfg.result_bytes).await;
                            }
                            router2.send(host, DRIVER_ADDR, ActorMsg::Done, 64);
                        }
                        ActorMsg::Stop => break,
                        ActorMsg::Done => {}
                    }
                }
            });
        }

        // Driver.
        let mut driver_inbox = router.register(DRIVER_ADDR);
        let router2 = router.clone();
        let h = handle.clone();
        let n_actors = actor_hosts.len() as u64;
        let executed = calls * steps_per_call;
        sim.spawn("ray-driver", async move {
            let start = h.now();
            for call in 0..calls {
                for a in &actor_hosts {
                    h.sleep(cfg.driver_call_overhead).await;
                    router2.send(
                        driver_host,
                        *a,
                        ActorMsg::Run {
                            base_tag: call * steps_per_call,
                            steps: steps_per_call,
                            fused,
                        },
                        512,
                    );
                }
                // ray.get on the returned refs.
                let mut done = 0;
                while done < n_actors {
                    match driver_inbox.recv().await {
                        Some(Envelope {
                            msg: ActorMsg::Done,
                            ..
                        }) => done += 1,
                        Some(_) => {}
                        None => {
                            return Throughput {
                                computations: 0,
                                elapsed: SimDuration::ZERO,
                            }
                        }
                    }
                }
            }
            for a in &actor_hosts {
                router2.send(driver_host, *a, ActorMsg::Stop, 16);
            }
            Throughput {
                computations: executed,
                elapsed: h.now().duration_since(start),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(hosts: u32, mode: SubmissionMode, n: u64) -> f64 {
        let mut sim = Sim::new(0);
        let rt = RayRuntime::new(
            &sim,
            hosts,
            NetworkParams::tpu_cluster(),
            RayConfig::default(),
        );
        let m = rt.spawn_benchmark(&mut sim, mode, StepWorkload::trivial(), n);
        sim.run_to_quiescence();
        m.try_take().unwrap().per_sec()
    }

    #[test]
    fn fused_beats_chained_beats_op_by_op() {
        let o = measure(2, SubmissionMode::OpByOp, 256);
        let c = measure(2, SubmissionMode::Chained, 256);
        let f = measure(2, SubmissionMode::Fused, 256);
        assert!(c > o, "chained {c}/s vs op-by-op {o}/s");
        assert!(f > c, "fused {f}/s vs chained {c}/s");
    }

    #[test]
    fn op_by_op_pays_per_task_overheads() {
        // One computation costs at least an actor task overhead plus a
        // DCN all-reduce plus the GPU→DRAM copy.
        let thr = measure(2, SubmissionMode::OpByOp, 64);
        let cfg = RayConfig::default();
        let floor = cfg.task_overhead.as_secs_f64();
        assert!(
            thr < 1.0 / floor,
            "throughput {thr}/s impossibly exceeds the task-overhead bound"
        );
    }

    #[test]
    fn completes_without_deadlock() {
        let mut sim = Sim::new(0);
        let rt = RayRuntime::new(&sim, 4, NetworkParams::tpu_cluster(), RayConfig::default());
        let m = rt.spawn_benchmark(
            &mut sim,
            SubmissionMode::Chained,
            StepWorkload::trivial(),
            256,
        );
        let out = sim.run();
        assert!(out.is_quiescent(), "{out:?}");
        assert_eq!(m.try_take().unwrap().computations, 256);
    }
}
