//! JAX-like multi-controller baseline (§2, Figure 1a).
//!
//! An identical copy of the user program runs on every host; each host
//! enqueues kernels onto its local devices over PCIe, asynchronously and
//! ahead of execution, and all cross-host communication happens inside
//! device collectives over ICI. There is no coordinator: the per-step
//! cost on the host side is the Python call plus local enqueues, and the
//! device side is the collective plus the computation. Whichever is
//! slower bounds throughput.

use pathways_sim::hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

use pathways_device::{
    CollectiveOp, CollectiveRendezvous, DeviceConfig, DeviceHandle, GangTag, Kernel,
};
use pathways_net::{ClusterSpec, CollectiveKind, DeviceId, Fabric, NetworkParams, Topology};
use pathways_sim::channel::OneshotReceiver;
use pathways_sim::{join_all, Sim, SimDuration, SimHandle};

use crate::workload::{StepWorkload, SubmissionMode, Throughput};

/// Tunables of the JAX-like baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaxConfig {
    /// Python-side cost per user call (dispatch through the JAX tracing
    /// cache and runtime bindings).
    pub python_overhead: SimDuration,
    /// HBM per device.
    pub hbm_per_device: u64,
}

impl Default for JaxConfig {
    fn default() -> Self {
        JaxConfig {
            python_overhead: SimDuration::from_micros(80),
            hbm_per_device: 16 << 30,
        }
    }
}

/// The multi-controller runtime.
pub struct JaxRuntime {
    handle: SimHandle,
    topo: Arc<Topology>,
    fabric: Fabric,
    devices: FxHashMap<DeviceId, DeviceHandle>,
    cfg: JaxConfig,
}

impl fmt::Debug for JaxRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JaxRuntime")
            .field("devices", &self.devices.len())
            .finish()
    }
}

impl JaxRuntime {
    /// Builds the baseline over a fresh cluster.
    pub fn new(sim: &Sim, spec: ClusterSpec, net: NetworkParams, cfg: JaxConfig) -> Self {
        let handle = sim.handle();
        let topo = Arc::new(spec.build());
        assert_eq!(
            topo.num_islands(),
            1,
            "multi-controller JAX cannot span islands (its collectives are ICI-only, §3)"
        );
        let fabric = Fabric::new(handle.clone(), Arc::clone(&topo), net);
        let rz = CollectiveRendezvous::new(handle.clone());
        let devices = topo
            .devices()
            .map(|d| {
                (
                    d,
                    DeviceHandle::spawn(
                        &handle,
                        d,
                        rz.clone(),
                        DeviceConfig {
                            hbm_capacity: cfg.hbm_per_device,
                        },
                    ),
                )
            })
            .collect();
        JaxRuntime {
            handle,
            topo,
            fabric,
            devices,
            cfg,
        }
    }

    /// Wire time of one all-reduce over every device.
    pub fn allreduce_time(&self, bytes: u64) -> SimDuration {
        let all: Vec<DeviceId> = self.topo.devices().collect();
        self.fabric
            .ici_collective_time(CollectiveKind::AllReduce, &all, bytes)
    }

    /// Runs `total_computations` of `workload` in `mode` and returns the
    /// measured throughput. Must complete before the simulation is run
    /// to quiescence (spawns controller tasks; call from outside the
    /// sim, then run the sim).
    pub fn spawn_benchmark(
        &self,
        sim: &mut Sim,
        mode: SubmissionMode,
        workload: StepWorkload,
        total_computations: u64,
    ) -> pathways_sim::JoinHandle<Throughput> {
        let participants = self.topo.num_devices();
        let coll = self.allreduce_time(workload.allreduce_bytes);
        let cfg = self.cfg;
        let fabric = self.fabric.clone();
        let topo = Arc::clone(&self.topo);
        let devices = self.devices.clone();
        let handle = self.handle.clone();

        // Per mode, determine calls and the kernel each call enqueues.
        let (calls, kernels_per_call, kernel): (u64, u64, Kernel) = match mode {
            SubmissionMode::OpByOp => (
                total_computations,
                1,
                Kernel::compute("step", workload.compute),
            ),
            // There is no Chained analogue for a multi-controller (§5.1);
            // callers should not request it, but map it to OpByOp rather
            // than panicking so sweeps can share code.
            SubmissionMode::Chained => (
                total_computations,
                1,
                Kernel::compute("step", workload.compute),
            ),
            SubmissionMode::Fused => {
                let n = workload.chain_len as u64;
                (
                    total_computations / n,
                    n,
                    // A fused kernel runs the whole chain on-device: the
                    // collectives happen inside the kernel, so the gang
                    // rendezvous below covers the first and the rest are
                    // folded into compute time.
                    Kernel::compute(
                        "fused",
                        (workload.compute + coll) * (n - 1) + workload.compute,
                    ),
                )
            }
        };

        let mut controllers = Vec::new();
        for host in topo.hosts() {
            let local: Vec<DeviceHandle> = topo
                .devices_of_host(host)
                .map(|d| devices[&d].clone())
                .collect();
            let fabric = fabric.clone();
            let h = handle.clone();
            controllers.push(sim.spawn(format!("jax-ctrl-{host}"), {
                let kernel = kernel.clone();
                async move {
                    let mut last: Vec<OneshotReceiver<_>> = Vec::new();
                    for call in 0..calls {
                        // Python dispatch for this call.
                        h.sleep(cfg.python_overhead).await;
                        let k = kernel.clone().with_collective(CollectiveOp {
                            kind: CollectiveKind::AllReduce,
                            // Same step on every host: same tag order.
                            tag: GangTag(call),
                            participants,
                            duration: coll,
                            devices: vec![],
                        });
                        last.clear();
                        for dev in &local {
                            // Async enqueue over PCIe; does not wait for
                            // the device.
                            fabric.pcie_enqueue(host).await;
                            last.push(dev.enqueue_simple(k.clone(), "jax"));
                        }
                    }
                    // Await the final call's completions.
                    for done in last {
                        let _ = done.await;
                    }
                }
            }));
        }

        let handle2 = self.handle.clone();
        let executed = calls * kernels_per_call;
        sim.spawn("jax-measure", async move {
            let start = handle2.now();
            join_all(controllers).await;
            Throughput {
                computations: executed,
                elapsed: handle2.now().duration_since(start),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(hosts: u32, mode: SubmissionMode, workload: StepWorkload, n: u64) -> f64 {
        let mut sim = Sim::new(0);
        let rt = JaxRuntime::new(
            &sim,
            ClusterSpec::config_b(hosts),
            NetworkParams::tpu_cluster(),
            JaxConfig::default(),
        );
        let m = rt.spawn_benchmark(&mut sim, mode, workload, n);
        sim.run_to_quiescence();
        m.try_take().unwrap().per_sec()
    }

    #[test]
    fn fused_beats_op_by_op() {
        let w = StepWorkload::trivial();
        let o = measure(2, SubmissionMode::OpByOp, w, 256);
        let f = measure(2, SubmissionMode::Fused, w, 256);
        assert!(f > o, "fused {f}/s should beat op-by-op {o}/s");
    }

    #[test]
    fn op_by_op_is_host_bound_for_tiny_kernels() {
        // Throughput should be close to 1 / (python + local enqueues).
        let w = StepWorkload {
            compute: SimDuration::from_micros(1),
            allreduce_bytes: 4,
            chain_len: 128,
        };
        let thr = measure(2, SubmissionMode::OpByOp, w, 512);
        let cfg = JaxConfig::default();
        let p = NetworkParams::tpu_cluster();
        let per_step = cfg.python_overhead + p.enqueue_cpu_overhead * 8;
        let bound = 1.0 / per_step.as_secs_f64();
        assert!(
            (thr / bound) > 0.7 && (thr / bound) < 1.3,
            "throughput {thr}/s vs host bound {bound}/s"
        );
    }

    #[test]
    fn throughput_declines_with_scale() {
        // The all-reduce latency grows with the mesh, so per-computation
        // time grows and throughput drops (Figure 5's JAX slope).
        let w = StepWorkload::trivial();
        let small = measure(2, SubmissionMode::Fused, w, 256);
        let large = measure(64, SubmissionMode::Fused, w, 256);
        assert!(
            small > large,
            "throughput should decline: {small}/s -> {large}/s"
        );
    }

    #[test]
    fn controllers_stay_in_lockstep_without_deadlock() {
        let w = StepWorkload::trivial();
        let mut sim = Sim::new(0);
        let rt = JaxRuntime::new(
            &sim,
            ClusterSpec::config_b(4),
            NetworkParams::tpu_cluster(),
            JaxConfig::default(),
        );
        let m = rt.spawn_benchmark(&mut sim, SubmissionMode::OpByOp, w, 64);
        let out = sim.run();
        assert!(out.is_quiescent(), "{out:?}");
        assert_eq!(m.try_take().unwrap().computations, 64);
    }
}
