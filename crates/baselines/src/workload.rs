//! The §5.1 micro-benchmark workload and submission modes.
//!
//! Every framework in Figure 5 runs the same trivial computation — "a
//! single scalar AllReduce followed by a scalar addition" — chained so
//! that each computation consumes the previous one's output. The three
//! submission modes are:
//!
//! * **OpByOp (-O)**: one client call per computation;
//! * **Chained (-C)**: one client call runs a 128-node chain;
//! * **Fused (-F)**: one client call runs a single node containing a
//!   chain of 128 computations compiled together.

use serde::{Deserialize, Serialize};

use pathways_sim::SimDuration;

/// How the client groups computations into calls (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubmissionMode {
    /// One call per computation.
    OpByOp,
    /// One call per chain of [`StepWorkload::chain_len`] nodes.
    Chained,
    /// One call per fused kernel of [`StepWorkload::chain_len`]
    /// computations.
    Fused,
}

impl std::fmt::Display for SubmissionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SubmissionMode::OpByOp => "-O",
            SubmissionMode::Chained => "-C",
            SubmissionMode::Fused => "-F",
        };
        f.write_str(s)
    }
}

/// One repeated computation of the micro-benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepWorkload {
    /// Device time of the computation body (the "scalar addition" plus
    /// per-op kernel overhead; Figure 6 sweeps this).
    pub compute: SimDuration,
    /// Payload of the AllReduce (scalars: 4 bytes).
    pub allreduce_bytes: u64,
    /// Nodes per chain for Chained/Fused modes (128 in the paper).
    pub chain_len: u32,
}

impl StepWorkload {
    /// The Figure 5 workload: scalar all-reduce + scalar add with a
    /// per-op kernel overhead typical of small XLA computations.
    pub fn trivial() -> Self {
        StepWorkload {
            compute: SimDuration::from_micros(30),
            allreduce_bytes: 4,
            chain_len: 128,
        }
    }

    /// The Figure 6 workload: computation body of `compute`, scalar
    /// all-reduce.
    pub fn sized(compute: SimDuration) -> Self {
        StepWorkload {
            compute,
            allreduce_bytes: 4,
            chain_len: 128,
        }
    }
}

/// A throughput measurement: computations completed per second of
/// *virtual* time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Total computations executed.
    pub computations: u64,
    /// Elapsed virtual time.
    pub elapsed: SimDuration,
}

impl Throughput {
    /// Computations per second.
    pub fn per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return f64::INFINITY;
        }
        self.computations as f64 / self.elapsed.as_secs_f64()
    }
}

impl std::fmt::Display for Throughput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}/s", self.per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let t = Throughput {
            computations: 500,
            elapsed: SimDuration::from_secs(2),
        };
        assert!((t.per_sec() - 250.0).abs() < 1e-9);
        assert_eq!(t.to_string(), "250.0/s");
    }

    #[test]
    fn modes_display_like_the_paper() {
        assert_eq!(SubmissionMode::OpByOp.to_string(), "-O");
        assert_eq!(SubmissionMode::Chained.to_string(), "-C");
        assert_eq!(SubmissionMode::Fused.to_string(), "-F");
    }
}
