//! # pathways-baselines
//!
//! The comparator systems of the paper's evaluation (§5.1), rebuilt over
//! the same simulated hardware substrate as the Pathways runtime so that
//! Figure 5's comparison isolates *architecture*, exactly as the paper
//! argues:
//!
//! * [`JaxRuntime`] — multi-controller: per-host controllers enqueue
//!   over PCIe, collectives over ICI, no coordinator (Figure 1a);
//! * [`Tf1Runtime`] — single controller with DCN control messages, a
//!   centralized barrier between steps, and results copied back to the
//!   client (Figure 1b/1c);
//! * [`RayRuntime`] — driver + Python actors on one-GPU hosts, DCN ring
//!   collectives, and a DRAM-only object store.
//!
//! All three expose the same `spawn_benchmark(mode, workload, n)`
//! measurement API used by the Figure 5/6/8 experiment binaries.

#![warn(missing_docs)]

mod jax;
mod ray;
mod tf1;
mod workload;

pub use jax::{JaxConfig, JaxRuntime};
pub use ray::{RayConfig, RayRuntime};
pub use tf1::{Tf1Config, Tf1Runtime};
pub use workload::{StepWorkload, SubmissionMode, Throughput};
