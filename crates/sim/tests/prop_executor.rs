//! Property-based tests for the virtual-time executor.

use proptest::prelude::*;

use pathways_sim::{join_all, sync::Semaphore, Sim, SimDuration, SimTime};

proptest! {
    /// The simulation clock stops at exactly the maximum task deadline,
    /// regardless of spawn order.
    #[test]
    fn clock_ends_at_max_deadline(delays in proptest::collection::vec(0u64..10_000, 1..40)) {
        let mut sim = Sim::new(0);
        for (i, d) in delays.iter().copied().enumerate() {
            let h = sim.handle();
            sim.spawn(format!("t{i}"), async move {
                h.sleep(SimDuration::from_nanos(d)).await;
            });
        }
        let end = sim.run_to_quiescence();
        let max = delays.iter().copied().max().unwrap();
        prop_assert_eq!(end, SimTime::from_nanos(max));
    }

    /// Identical seeds and workloads give identical event interleavings.
    #[test]
    fn executor_is_deterministic(
        seed in any::<u64>(),
        delays in proptest::collection::vec(0u64..1_000, 1..20),
    ) {
        let run = |seed: u64, delays: &[u64]| {
            let mut sim = Sim::new(seed);
            let mut handles = Vec::new();
            for (i, d) in delays.iter().copied().enumerate() {
                let h = sim.handle();
                handles.push(sim.spawn(format!("t{i}"), async move {
                    // Mix deterministic rng into the sleep to exercise it.
                    let jitter = h.rng_range(16);
                    h.sleep(SimDuration::from_nanos(d + jitter)).await;
                    h.now().as_nanos()
                }));
            }
            let joined = sim.spawn("join", async move { join_all(handles).await });
            sim.run_to_quiescence();
            joined.try_take().unwrap()
        };
        prop_assert_eq!(run(seed, &delays), run(seed, &delays));
    }

    /// A semaphore of capacity `c` with `n` holders of `per`-length
    /// critical sections finishes in ceil(n/c) * per time (all sections
    /// equal length, all tasks start at t=0).
    #[test]
    fn semaphore_throughput_is_exact(
        cap in 1u64..8,
        n in 1usize..32,
        per_us in 1u64..100,
    ) {
        let mut sim = Sim::new(0);
        let sem = Semaphore::new(cap);
        for i in 0..n {
            let sem = sem.clone();
            let h = sim.handle();
            sim.spawn(format!("t{i}"), async move {
                let _p = sem.acquire(1).await;
                h.sleep(SimDuration::from_micros(per_us)).await;
            });
        }
        let end = sim.run_to_quiescence();
        let rounds = (n as u64).div_ceil(cap);
        prop_assert_eq!(end.as_nanos(), rounds * per_us * 1_000);
    }

    /// Permits never leak: after any interleaving of acquire/release the
    /// semaphore ends with its initial permit count.
    #[test]
    fn semaphore_permits_conserved(
        cap in 1u64..6,
        ops in proptest::collection::vec((1u64..4, 0u64..50), 1..30),
    ) {
        let mut sim = Sim::new(0);
        let sem = Semaphore::new(cap);
        for (i, (want, hold)) in ops.iter().copied().enumerate() {
            let want = want.min(cap);
            let sem = sem.clone();
            let h = sim.handle();
            sim.spawn(format!("t{i}"), async move {
                let p = sem.acquire(want).await;
                h.sleep(SimDuration::from_nanos(hold)).await;
                drop(p);
            });
        }
        sim.run_to_quiescence();
        prop_assert_eq!(sem.available(), cap);
        prop_assert_eq!(sem.waiters(), 0);
    }
}
