//! Executor-conformance suite: the contract both backends must honor.
//!
//! Every test runs against the deterministic virtual-time backend and
//! the work-stealing threaded backend. The deterministic leg may pin
//! exact orders (FIFO ready queue, registration-order timer firing,
//! bit-identical replay); the threaded leg asserts only the invariants
//! the `Executor` surface promises regardless of scheduling: every
//! spawned task runs, timers never fire early, per-sender channel
//! order is preserved, and dropped/aborted tasks release their state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pathways_sim::channel::channel;
use pathways_sim::sync::Notify;
use pathways_sim::{Backend, Executor, ExecutorKind, Lock, SimDuration, SimTime};

const BOTH: [ExecutorKind; 2] = [
    ExecutorKind::Deterministic,
    ExecutorKind::Threaded { workers: 2 },
];

// --------------------------------------------------------- spawn ordering

/// Every spawned task runs exactly once; on the deterministic backend
/// the ready queue is FIFO, so first-poll order equals spawn order.
#[test]
fn spawn_runs_every_task_fifo_when_deterministic() {
    for kind in BOTH {
        let mut ex = Executor::new(kind, 7);
        let order: Arc<Lock<Vec<usize>>> = Arc::new(Lock::new(Vec::new()));
        for i in 0..16 {
            let order = Arc::clone(&order);
            ex.spawn(format!("t{i}"), async move {
                order.lock().push(i);
            });
        }
        assert!(ex.run().is_quiescent(), "{kind:?}");
        let mut got = order.lock().clone();
        if kind.backend() == Backend::Deterministic {
            assert_eq!(got, (0..16).collect::<Vec<_>>(), "{kind:?}");
        } else {
            got.sort_unstable();
            assert_eq!(got, (0..16).collect::<Vec<_>>(), "{kind:?}");
        }
    }
}

/// Tasks spawned from inside tasks also run to completion.
#[test]
fn nested_spawns_complete() {
    for kind in BOTH {
        let mut ex = Executor::new(kind, 7);
        let count = Arc::new(Lock::new(0u32));
        let h = ex.handle();
        let count2 = Arc::clone(&count);
        ex.spawn("outer", async move {
            let mut inner = Vec::new();
            for i in 0..8 {
                let count = Arc::clone(&count2);
                inner.push(h.spawn(format!("inner{i}"), async move {
                    *count.lock() += 1;
                }));
            }
            pathways_sim::join_all(inner).await;
            *count2.lock() += 100;
        });
        assert!(ex.run().is_quiescent(), "{kind:?}");
        assert_eq!(*count.lock(), 108, "{kind:?}");
    }
}

// -------------------------------------------------------- timer behavior

/// Timers sharing one deadline all fire, never early; on the
/// deterministic backend they fire at exactly the deadline, in
/// registration order, and the run ends at that instant.
#[test]
fn timer_coalescing_shared_deadline() {
    for kind in BOTH {
        let mut ex = Executor::new(kind, 7);
        let deadline = SimDuration::from_millis(1);
        let woke: Arc<Lock<Vec<(usize, SimTime)>>> = Arc::new(Lock::new(Vec::new()));
        for i in 0..8 {
            let h = ex.handle();
            let woke = Arc::clone(&woke);
            ex.spawn(format!("timer{i}"), async move {
                h.sleep(deadline).await;
                woke.lock().push((i, h.now()));
            });
        }
        let outcome = ex.run();
        assert!(outcome.is_quiescent(), "{kind:?}: {outcome:?}");
        let woke = woke.lock().clone();
        assert_eq!(woke.len(), 8, "{kind:?}");
        let exact = SimTime::ZERO + deadline;
        for &(i, at) in &woke {
            assert!(at >= exact, "{kind:?}: timer {i} fired early at {at:?}");
        }
        if kind.backend() == Backend::Deterministic {
            let order: Vec<usize> = woke.iter().map(|&(i, _)| i).collect();
            assert_eq!(order, (0..8).collect::<Vec<_>>(), "registration order");
            assert!(woke.iter().all(|&(_, at)| at == exact), "{woke:?}");
            assert_eq!(outcome.time(), exact);
        }
    }
}

/// Distinct deadlines fire in deadline order on the deterministic
/// backend; on both backends each sleeper observes `now >= deadline`.
#[test]
fn timers_fire_in_deadline_order() {
    for kind in BOTH {
        let mut ex = Executor::new(kind, 7);
        let woke: Arc<Lock<Vec<u64>>> = Arc::new(Lock::new(Vec::new()));
        // Spawn in reverse-deadline order to rule out spawn-order luck.
        for ms in [8u64, 4, 2, 1] {
            let h = ex.handle();
            let woke = Arc::clone(&woke);
            ex.spawn(format!("sleep{ms}ms"), async move {
                h.sleep(SimDuration::from_millis(ms)).await;
                woke.lock().push(ms);
            });
        }
        assert!(ex.run().is_quiescent(), "{kind:?}");
        let woke = woke.lock().clone();
        if kind.backend() == Backend::Deterministic {
            assert_eq!(woke, vec![1, 2, 4, 8], "{kind:?}");
        } else {
            let mut sorted = woke.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2, 4, 8], "{kind:?}: {woke:?}");
        }
    }
}

/// A `sleep_until` a deadline already in the past resolves without
/// arming a timer, and time never runs backward across it.
#[test]
fn past_deadline_sleep_resolves_immediately() {
    for kind in BOTH {
        let mut ex = Executor::new(kind, 7);
        let h = ex.handle();
        let done = ex.spawn("past", async move {
            h.sleep(SimDuration::from_millis(1)).await;
            let before = h.now();
            h.sleep_until(SimTime::ZERO).await;
            let after = h.now();
            assert!(
                after >= before,
                "time ran backward: {before:?} -> {after:?}"
            );
            true
        });
        assert!(ex.run().is_quiescent(), "{kind:?}");
        assert_eq!(done.try_take(), Some(true), "{kind:?}");
    }
}

// ------------------------------------------------------- channel fairness

/// With several senders racing one receiver: nothing is lost or
/// duplicated, and each sender's messages arrive in its send order. On
/// the deterministic backend the full interleaving replays
/// bit-identically across runs.
#[test]
fn channel_fairness_and_per_sender_order() {
    const SENDERS: usize = 4;
    const PER_SENDER: usize = 16;

    let run = |kind: ExecutorKind| -> Vec<(usize, usize)> {
        let mut ex = Executor::new(kind, 7);
        let (tx, mut rx) = channel::<(usize, usize)>();
        for s in 0..SENDERS {
            let h = ex.handle();
            let tx = tx.clone();
            ex.spawn(format!("sender{s}"), async move {
                for k in 0..PER_SENDER {
                    tx.send((s, k)).expect("receiver alive");
                    // Yield between sends so senders interleave.
                    h.yield_now().await;
                }
            });
        }
        drop(tx);
        let received = ex.spawn("receiver", async move {
            let mut got = Vec::new();
            while let Some(msg) = rx.recv().await {
                got.push(msg);
            }
            got
        });
        assert!(ex.run().is_quiescent(), "{kind:?}");
        received.try_take().expect("receiver finished")
    };

    for kind in BOTH {
        let got = run(kind);
        assert_eq!(got.len(), SENDERS * PER_SENDER, "{kind:?}");
        // Per-sender FIFO: each sender's k values form 0..PER_SENDER in
        // order within the merged stream.
        for s in 0..SENDERS {
            let ks: Vec<usize> = got
                .iter()
                .filter(|(fs, _)| *fs == s)
                .map(|&(_, k)| k)
                .collect();
            assert_eq!(
                ks,
                (0..PER_SENDER).collect::<Vec<_>>(),
                "{kind:?} sender {s}"
            );
        }
        if kind.backend() == Backend::Deterministic {
            assert_eq!(got, run(kind), "deterministic interleaving must replay");
        }
    }
}

// ------------------------------------------------------- drop-on-shutdown

/// Sets its flag when dropped — stands in for any resource a task owns.
struct DropFlag(Arc<AtomicBool>);

impl Drop for DropFlag {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// A task parked forever is reported as stuck, and dropping the
/// executor drops the task's future (its owned state is released, not
/// leaked) on both backends.
#[test]
fn shutdown_drops_pending_tasks() {
    for kind in BOTH {
        let mut ex = Executor::new(kind, 7);
        let dropped = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Notify::new());
        let flag = DropFlag(Arc::clone(&dropped));
        let gate2 = Arc::clone(&gate);
        ex.spawn("parked-forever", async move {
            let _flag = flag;
            gate2.notified().await;
        });
        let outcome = ex.run();
        assert!(outcome.is_deadlock(), "{kind:?}: {outcome:?}");
        assert!(
            !dropped.load(Ordering::SeqCst),
            "{kind:?}: future dropped while executor still owns it"
        );
        drop(ex);
        assert!(
            dropped.load(Ordering::SeqCst),
            "{kind:?}: shutdown leaked the pending task's state"
        );
    }
}

/// `JoinHandle::abort` removes the task: it never runs again and its
/// owned state is dropped, on both backends.
#[test]
fn abort_drops_task_state() {
    for kind in BOTH {
        let mut ex = Executor::new(kind, 7);
        let dropped = Arc::new(AtomicBool::new(false));
        let ran = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Notify::new());
        let flag = DropFlag(Arc::clone(&dropped));
        let (gate2, ran2) = (Arc::clone(&gate), Arc::clone(&ran));
        let victim = ex.spawn("victim", async move {
            let _flag = flag;
            gate2.notified().await;
            ran2.store(true, Ordering::SeqCst);
        });
        victim.abort();
        gate.notify_one();
        let outcome = ex.run();
        assert!(outcome.is_quiescent(), "{kind:?}: {outcome:?}");
        assert!(
            dropped.load(Ordering::SeqCst),
            "{kind:?}: aborted task's state not dropped"
        );
        assert!(
            !ran.load(Ordering::SeqCst),
            "{kind:?}: aborted task ran past its park point"
        );
    }
}
