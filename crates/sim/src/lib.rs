//! # pathways-sim
//!
//! Deterministic virtual-time discrete-event simulation substrate for the
//! Pathways reproduction.
//!
//! The paper's evaluation runs on thousands of TPU cores; this crate
//! replaces wall-clock time on that testbed with a deterministic
//! single-threaded async executor whose clock only advances when every
//! runnable task has yielded. Hosts, schedulers, device executors and
//! clients are all ordinary Rust `async` tasks; latencies are modelled by
//! [`SimHandle::sleep`] rather than measured.
//!
//! Determinism matters here: the paper's Figures 9–12 are execution
//! traces, and with a deterministic executor our reproductions of those
//! traces are bit-identical across runs.
//!
//! ## Example
//!
//! ```
//! use pathways_sim::{channel, Sim, SimDuration};
//!
//! let mut sim = Sim::new(0);
//! let (tx, mut rx) = channel::channel();
//! let h = sim.handle();
//! sim.spawn("device", async move {
//!     // Model a 10us kernel.
//!     h.sleep(SimDuration::from_micros(10)).await;
//!     tx.send("kernel done").unwrap();
//! });
//! let host = sim.spawn("host", async move { rx.recv().await });
//! sim.run_to_quiescence();
//! assert_eq!(host.try_take().unwrap(), Some("kernel done"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod exec;
pub mod fault;
pub mod hash;
pub mod lock;
pub mod sync;
mod time;
pub mod trace;
mod wheel;

pub use exec::{
    join_all, Backend, Executor, ExecutorBackend, ExecutorKind, ExecutorRef, IdleToken, JoinHandle,
    RunOutcome, Sim, SimHandle, Sleep, TaskId, ThreadedExecutor, YieldNow,
};
pub use fault::{FaultPlan, FaultSignal, FaultStamp};
pub use hash::{FxHashMap, FxHashSet};
pub use lock::{contention_profile, reset_contention_profile, Lock, LockGuard, LockProfile};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceLog, TraceSpan};
