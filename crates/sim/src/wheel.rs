//! Hierarchical timer wheel — the executor's timer queue.
//!
//! The seed executor kept every pending timer in one `BinaryHeap` and
//! popped them one at a time: `O(log n)` per insert and per pop, with
//! same-deadline timers (a 10k-device cluster arms *thousands* of
//! identical-deadline timers per simulated step) each paying their own
//! heap rebalance. This wheel replaces it with the classic hashed
//! hierarchical design (Varghese & Lauck; the Linux kernel's timer
//! wheel), adapted for discrete-event simulation:
//!
//! * [`TimerWheel::insert`] is `O(1)` for the common short-deadline
//!   case: the level is found from the bit-length of the delta and the
//!   entry is pushed onto a slot `Vec`.
//! * Same-tick timers coalesce into one slot, so
//!   [`TimerWheel::pop_batch_into`] hands the executor *every* timer of
//!   the next deadline in one call — one structure operation per simulated
//!   instant instead of one per timer.
//! * Virtual time can jump arbitrarily far, so the wheel never scans
//!   empty ticks: per-level occupancy bitmaps (one `u64` per 64-slot
//!   level) find the next occupied slot with bit arithmetic, and
//!   deadlines beyond the wheel's span live in an overflow `BTreeMap`
//!   consulted only when every level is empty.
//!
//! Firing order is bit-identical to the heap it replaces: batches come
//! out in deadline order, and entries within a batch are sorted by
//! registration sequence.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// Slots per level (fixed at 64 so occupancy is one `u64` bitmap).
const SLOTS: usize = 64;
/// log2(SLOTS).
const SLOT_BITS: u32 = 6;
/// Number of wheel levels. Level `l` slots span `64^l` ticks, so six
/// levels cover `64^6` ns ≈ 68 virtual seconds from the cursor; later
/// deadlines overflow into a `BTreeMap` (rare: one entry per distinct
/// far deadline, reinserted in bulk when the wheel drains to it).
const LEVELS: usize = 6;

/// One pending timer.
#[derive(Debug)]
struct Entry<T> {
    deadline: u64,
    seq: u64,
    value: T,
}

/// A hierarchical timer wheel keyed by [`SimTime`] deadlines.
///
/// `T` is the payload fired per timer (the executor stores wakers).
pub struct TimerWheel<T> {
    /// `levels[l][s]` holds entries whose deadline maps to slot `s` of
    /// level `l` relative to the cursor.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Per-level occupancy bitmap: bit `s` set iff `levels[l][s]` is
    /// non-empty.
    occupancy: [u64; LEVELS],
    /// Deadlines beyond the top level's span, keyed by deadline.
    overflow: BTreeMap<u64, Vec<Entry<T>>>,
    /// The wheel's notion of "now", in ticks (nanoseconds). Only ever
    /// advanced to the earliest pending deadline (during a settle) or
    /// the deadline of a fired batch — never past a pending timer.
    cursor: u64,
    /// Total pending entries.
    len: usize,
    /// Empty-but-capacitated slot buffers recycled between fires, so a
    /// steady-state wheel stops allocating: every pop returns its
    /// drained buffer here and `place` hands one to the next slot
    /// that would otherwise allocate from scratch.
    spare: Vec<Vec<Entry<T>>>,
}

/// Cap on recycled slot buffers (a pop donates one per fire but
/// `place` only consumes one per *cold* slot, so the pool would
/// otherwise grow without bound).
const SPARE_CAP: usize = 64;

impl<T> TimerWheel<T> {
    /// An empty wheel with its cursor at the epoch.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupancy: [0; LEVELS],
            overflow: BTreeMap::new(),
            cursor: 0,
            len: 0,
            spare: Vec::new(),
        }
    }

    /// Donates a drained slot buffer back to the recycle pool.
    fn recycle(&mut self, buf: Vec<Entry<T>>) {
        debug_assert!(buf.is_empty());
        if self.spare.len() < SPARE_CAP {
            self.spare.push(buf);
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Registers a timer. `seq` orders timers that share a deadline
    /// (registration order, assigned by the caller).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is before a batch that already fired (the
    /// executor never registers timers in the past).
    pub fn insert(&mut self, deadline: SimTime, seq: u64, value: T) {
        let deadline = deadline.as_nanos();
        assert!(deadline >= self.cursor, "timer registered in the past");
        self.len += 1;
        let entry = Entry {
            deadline,
            seq,
            value,
        };
        self.place(entry);
    }

    /// Puts one entry into the level/slot (or overflow) it belongs to
    /// relative to the current cursor.
    fn place(&mut self, entry: Entry<T>) {
        let deadline = entry.deadline;
        // The entry lives at the lowest level whose *parent* slot is
        // the cursor's — i.e. the level of the highest bit where the
        // deadline and the cursor differ. Within that rotation the
        // slot index is unambiguous and still in the future.
        let diff = deadline ^ self.cursor;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        if level >= LEVELS {
            self.overflow.entry(deadline).or_default().push(entry);
            return;
        }
        let slot = (deadline >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
        let bucket = &mut self.levels[level][slot];
        if bucket.capacity() == 0 {
            if let Some(buf) = self.spare.pop() {
                *bucket = buf;
            }
        }
        bucket.push(entry);
        self.occupancy[level] |= 1 << slot;
    }

    /// Deadline of the next pending timer, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.min_pending().map(SimTime::from_nanos)
    }

    /// Earliest pending deadline, computed *without* moving the cursor.
    ///
    /// The earliest entry lives either in level 0 (where the bitmap's
    /// lowest set bit is the exact deadline), in the earliest occupied
    /// slot of the lowest occupied level (scan that one slot), or in
    /// the overflow map. Entries in later slots, higher levels, or the
    /// overflow are all strictly later than that slot's span.
    fn min_pending(&self) -> Option<u64> {
        if self.occupancy[0] != 0 {
            let slot = self.occupancy[0].trailing_zeros() as usize;
            let base = (self.cursor >> SLOT_BITS) << SLOT_BITS;
            return Some(base + slot as u64);
        }
        for level in 1..LEVELS {
            if self.occupancy[level] == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let cur_slot = (self.cursor >> shift) as usize & (SLOTS - 1);
            let ahead = self.occupancy[level] & (!0u64 << cur_slot);
            debug_assert!(ahead != 0, "occupied slot behind the cursor");
            let slot = ahead.trailing_zeros() as usize;
            return self.levels[level][slot].iter().map(|e| e.deadline).min();
        }
        self.overflow.keys().next().copied()
    }

    /// Removes and returns every timer of the earliest deadline, sorted
    /// by registration sequence, if that deadline is `<= limit`.
    /// Advances the wheel's cursor to the fired deadline.
    ///
    /// When nothing fires (empty, or earliest deadline past `limit`)
    /// the wheel is left untouched — in particular the cursor does not
    /// move, so timers registered later at deadlines after the caller's
    /// "now" but before the earliest pending one remain valid.
    #[cfg(test)]
    pub fn pop_batch(&mut self, limit: SimTime) -> Option<(SimTime, Vec<T>)> {
        let mut values = Vec::new();
        let deadline = self.pop_batch_into(limit, &mut values)?;
        Some((deadline, values))
    }

    /// Removes every timer of the earliest deadline if that deadline
    /// is `<= limit`, appending the fired values to `out` in
    /// registration-sequence order, and advances the cursor to the
    /// fired deadline. Returns the deadline, or `None` (wheel left
    /// fully untouched) when nothing fires. The caller owns `out` and
    /// can recycle it across its run loop, so a steady-state pop
    /// performs no allocation at all.
    ///
    /// The earliest occupied slot of the lowest occupied level holds
    /// the globally earliest wheel deadline: same-level entries in
    /// later slots start after this slot's window ends, and an entry at
    /// a higher level `m` lies outside the cursor's level-`m` window
    /// while this slot lies inside it. (Overflow keys are later still:
    /// they sit in top-level windows beyond the cursor's.) The cursor
    /// can therefore jump straight to that minimum — skipping nothing —
    /// and each displaced entry re-places exactly once, instead of
    /// cascading down one level per pass. This is what makes sparse
    /// far-apart timers (a simulated device sleeping ~100µs at ns
    /// resolution) as cheap to fire as dense near ones.
    pub fn pop_batch_into(&mut self, limit: SimTime, out: &mut Vec<T>) -> Option<SimTime> {
        let limit = limit.as_nanos();
        // Fast path: the earliest timer is already in a level-0 slot.
        // Level-0 entries lie in the cursor's current 64-tick window,
        // so the bitmap's lowest set bit *is* the next deadline.
        if self.occupancy[0] != 0 {
            let slot = self.occupancy[0].trailing_zeros() as usize;
            let deadline = ((self.cursor >> SLOT_BITS) << SLOT_BITS) + slot as u64;
            if deadline > limit {
                return None;
            }
            let batch = std::mem::take(&mut self.levels[0][slot]);
            self.occupancy[0] &= !(1u64 << slot);
            return Some(self.fire(deadline, batch, out));
        }
        if let Some(level) = (1..LEVELS).find(|l| self.occupancy[*l] != 0) {
            let shift = SLOT_BITS * level as u32;
            let cur_slot = (self.cursor >> shift) as usize & (SLOTS - 1);
            // All entries are >= cursor, so the earliest occupied slot
            // is at or after the cursor's own slot in this rotation.
            let ahead = self.occupancy[level] & (!0u64 << cur_slot);
            debug_assert!(ahead != 0, "occupied slot behind the cursor");
            let slot = ahead.trailing_zeros() as usize;
            let min = self.levels[level][slot]
                .iter()
                .map(|e| e.deadline)
                .min()
                .expect("occupied slot is non-empty");
            if min > limit {
                // Nothing fires; the wheel (cursor included) is left
                // untouched so the caller may still register timers
                // between its unadvanced "now" and `min`.
                return None;
            }
            let mut entries = std::mem::take(&mut self.levels[level][slot]);
            self.occupancy[level] &= !(1u64 << slot);
            self.cursor = min;
            // Split the slot: the minimum's entries fire right now;
            // later ones re-place relative to the jumped cursor.
            let mut batch = self.spare.pop().unwrap_or_default();
            for e in entries.drain(..) {
                if e.deadline == min {
                    batch.push(e);
                } else {
                    self.place(e);
                }
            }
            self.recycle(entries);
            return Some(self.fire(min, batch, out));
        }
        // Wheel empty: the earliest overflow key fires. Pull the rest
        // of its *top-level window* into the wheel, so overflow keys
        // stay strictly beyond the cursor's top window and the wheel
        // branches above stay authoritative about the minimum.
        let (&first, _) = self.overflow.first_key_value()?;
        if first > limit {
            return None;
        }
        let (first, batch) = self.overflow.pop_first()?;
        self.cursor = first;
        let top_shift = SLOT_BITS * LEVELS as u32;
        let window = first >> top_shift;
        while self
            .overflow
            .first_key_value()
            .is_some_and(|(&d, _)| d >> top_shift == window)
        {
            let Some((_, entries)) = self.overflow.pop_first() else {
                break;
            };
            for e in entries {
                self.place(e);
            }
        }
        Some(self.fire(first, batch, out))
    }

    /// Finalizes a popped batch: restores registration order, moves the
    /// values out, and recycles the buffer.
    fn fire(&mut self, deadline: u64, mut batch: Vec<Entry<T>>, out: &mut Vec<T>) -> SimTime {
        debug_assert!(!batch.is_empty());
        debug_assert!(batch.iter().all(|e| e.deadline == deadline));
        self.cursor = deadline;
        self.len -= batch.len();
        // Cursor jumps preserve per-slot insertion order but interleave
        // sources; sequence order is restored here, once per batch.
        batch.sort_by_key(|e| e.seq);
        out.extend(batch.drain(..).map(|e| e.value));
        self.recycle(batch);
        SimTime::from_nanos(deadline)
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("len", &self.len)
            .field("cursor", &self.cursor)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Drains the wheel fully, returning `(deadline, values)` batches.
    fn drain(w: &mut TimerWheel<u64>) -> Vec<(u64, Vec<u64>)> {
        let mut out = Vec::new();
        while let Some((d, vs)) = w.pop_batch(SimTime::MAX) {
            out.push((d.as_nanos(), vs));
        }
        out
    }

    #[test]
    fn fires_in_deadline_then_seq_order() {
        let mut w = TimerWheel::new();
        // Deliberately interleaved deadlines across levels.
        for (i, ns) in [500u64, 3, 70_000, 3, 4096, 64, 500].iter().enumerate() {
            w.insert(t(*ns), i as u64, i as u64);
        }
        assert_eq!(w.len(), 7);
        let batches = drain(&mut w);
        assert_eq!(
            batches,
            vec![
                (3, vec![1, 3]), // same tick coalesced, seq order kept
                (64, vec![5]),
                (500, vec![0, 6]),
                (4096, vec![4]),
                (70_000, vec![2]),
            ]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn ordering_across_all_levels_and_overflow() {
        // One timer per level plus two in overflow territory; they must
        // come out strictly sorted regardless of storage level.
        let mut w = TimerWheel::new();
        let deadlines = [
            1u64,
            63,
            64,
            4_095,
            4_096,
            262_143,
            262_144,
            1 << 30,
            1 << 35,
            (1 << 36) + 17, // past the 64^6 span: overflow
            u64::MAX / 2,   // deep overflow
        ];
        for (i, ns) in deadlines.iter().enumerate() {
            w.insert(t(*ns), i as u64, *ns);
        }
        let fired: Vec<u64> = drain(&mut w).into_iter().map(|(d, _)| d).collect();
        let mut sorted = deadlines.to_vec();
        sorted.sort_unstable();
        assert_eq!(fired, sorted);
    }

    #[test]
    fn same_tick_timers_coalesce_into_one_batch() {
        let mut w = TimerWheel::new();
        for seq in 0..1000u64 {
            w.insert(t(12_345), seq, seq);
        }
        let (d, vs) = w.pop_batch(SimTime::MAX).unwrap();
        assert_eq!(d, t(12_345));
        assert_eq!(vs, (0..1000).collect::<Vec<_>>());
        assert!(w.pop_batch(SimTime::MAX).is_none());
    }

    #[test]
    fn pop_batch_respects_limit() {
        let mut w = TimerWheel::new();
        w.insert(t(100), 0, 0);
        w.insert(t(200), 1, 1);
        assert!(w.pop_batch(t(99)).is_none());
        assert_eq!(w.len(), 2, "limited pop leaves timers pending");
        let (d, _) = w.pop_batch(t(100)).unwrap();
        assert_eq!(d, t(100));
        assert!(w.pop_batch(t(150)).is_none());
        assert_eq!(w.pop_batch(t(200)).unwrap().0, t(200));
    }

    #[test]
    fn next_deadline_peeks_without_firing() {
        let mut w: TimerWheel<()> = TimerWheel::new();
        assert_eq!(w.next_deadline(), None);
        w.insert(t(1 << 20), 0, ());
        w.insert(t(77), 1, ());
        assert_eq!(w.next_deadline(), Some(t(77)));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn inserts_between_pops_keep_exact_order() {
        let mut w = TimerWheel::new();
        w.insert(t(10), 0, 0);
        w.insert(t(1_000_000), 1, 1);
        assert_eq!(w.pop_batch(SimTime::MAX).unwrap().0, t(10));
        // Cursor is now at 10; a short relative sleep lands at level 0/1.
        w.insert(t(20), 2, 2);
        w.insert(t(1_000_000), 3, 3);
        assert_eq!(w.pop_batch(SimTime::MAX).unwrap(), (t(20), vec![2]));
        // The same-deadline pair merged across an intervening cascade
        // still fires as one seq-ordered batch.
        assert_eq!(
            w.pop_batch(SimTime::MAX).unwrap(),
            (t(1_000_000), vec![1, 3])
        );
    }

    #[test]
    fn randomized_against_a_sorted_reference() {
        // Seeded xorshift so the test is deterministic without rand.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut w = TimerWheel::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (deadline, seq)
        let mut seq = 0u64;
        let mut now = 0u64;
        for round in 0..200 {
            // Insert a burst of timers at deadlines >= now, spanning
            // every level (biased short like real sleeps).
            for _ in 0..(rng() % 8 + 1) {
                let r = rng();
                let delta = match r % 5 {
                    0 => r % 64,
                    1 => r % 4_096,
                    2 => r % 1_000_000,
                    3 => r % (1 << 30),
                    _ => r % (1 << 40),
                } + 1;
                let deadline = now + delta;
                w.insert(t(deadline), seq, seq);
                reference.push((deadline, seq));
                seq += 1;
            }
            // Pop a few batches and compare against the reference.
            for _ in 0..(rng() % 3) {
                reference.sort_unstable();
                match w.pop_batch(SimTime::MAX) {
                    Some((d, vs)) => {
                        now = d.as_nanos();
                        let expect: Vec<u64> = reference
                            .iter()
                            .take_while(|(dl, _)| *dl == now)
                            .map(|(_, s)| *s)
                            .collect();
                        assert_eq!(vs, expect, "round {round}: batch mismatch at {now}");
                        reference.drain(..expect.len());
                    }
                    None => assert!(reference.is_empty()),
                }
            }
        }
        // Drain the tail.
        reference.sort_unstable();
        let fired: Vec<u64> = drain(&mut w).into_iter().flat_map(|(_, vs)| vs).collect();
        let expect: Vec<u64> = reference.iter().map(|(_, s)| *s).collect();
        assert_eq!(fired, expect);
    }

    #[test]
    fn zero_then_max_span() {
        let mut w = TimerWheel::new();
        w.insert(t(0), 0, 0);
        assert_eq!(w.pop_batch(SimTime::MAX).unwrap(), (t(0), vec![0]));
        w.insert(SimTime::MAX, 1, 1);
        assert_eq!(w.next_deadline(), Some(SimTime::MAX));
        assert_eq!(w.pop_batch(SimTime::MAX).unwrap().0, SimTime::MAX);
    }

    #[test]
    fn far_deadline_sleeps_compose_with_near_ones() {
        // A "heartbeat" far timer must not perturb dense near timers —
        // the pattern a 10k-device sim produces constantly.
        let mut w = TimerWheel::new();
        w.insert(t(1 << 40), 0, 999);
        for ns in 1..100u64 {
            w.insert(t(ns * 1000), ns, ns);
        }
        let batches = drain(&mut w);
        assert_eq!(batches.len(), 100);
        assert_eq!(batches.last().unwrap(), &((1 << 40), vec![999]));
    }

    #[test]
    fn limited_pop_leaves_cursor_for_earlier_inserts() {
        // A bounded run must not burn the cursor toward a far pending
        // timer: the caller's clock did not advance, and it may later
        // register timers before that far deadline.
        let mut w = TimerWheel::new();
        w.insert(t(1_000_000), 0, 0);
        assert!(w.pop_batch(t(10)).is_none());
        w.insert(t(100), 1, 1); // after "now" (0), before the pending timer
        assert_eq!(w.pop_batch(t(100)).unwrap(), (t(100), vec![1]));
        assert_eq!(w.pop_batch(SimTime::MAX).unwrap(), (t(1_000_000), vec![0]));
    }

    #[test]
    #[should_panic(expected = "registered in the past")]
    fn past_insert_panics() {
        let mut w = TimerWheel::new();
        w.insert(t(100), 0, 0);
        w.pop_batch(SimTime::MAX);
        w.insert(t(50), 1, 1);
    }

    #[test]
    fn dropped_value_is_gone_after_fire() {
        // "Cancellation" in the executor is dropping the Sleep future;
        // the waker still fires but wakes nothing. At the wheel layer
        // that means values are returned exactly once and the wheel
        // holds no residue.
        let mut w = TimerWheel::new();
        let payload = std::rc::Rc::new(());
        w.insert(t(5), 0, std::rc::Rc::clone(&payload));
        assert_eq!(std::rc::Rc::strong_count(&payload), 2);
        let (_, vs) = w.pop_batch(SimTime::MAX).unwrap();
        drop(vs);
        assert_eq!(std::rc::Rc::strong_count(&payload), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn cursor_jumps_do_not_skip_timers() {
        // Fire a far timer (big cursor jump through multiple levels),
        // then insert near timers and make sure nothing is lost.
        let mut w = TimerWheel::new();
        w.insert(t(10_000_000_000), 0, 0); // 10s
        assert_eq!(w.pop_batch(SimTime::MAX).unwrap().0, t(10_000_000_000));
        for (i, d) in [1u64, 2, 3].iter().enumerate() {
            w.insert(
                t(10_000_000_000) + SimDuration::from_nanos(*d),
                i as u64 + 1,
                *d,
            );
        }
        let fired: Vec<u64> = drain(&mut w).into_iter().flat_map(|(_, v)| v).collect();
        assert_eq!(fired, vec![1, 2, 3]);
    }
}
