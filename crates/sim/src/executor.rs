//! The deterministic virtual-time executor.
//!
//! A [`Sim`] owns a set of single-threaded tasks and a virtual clock.
//! Tasks are ordinary Rust futures (not `Send`; the whole simulation is
//! one thread) that sleep on virtual timers via [`SimHandle::sleep`] and
//! communicate through the channels in [`crate::channel`] and the
//! primitives in [`crate::sync`].
//!
//! Execution is deterministic: the ready queue is FIFO, timers fire in
//! `(deadline, registration order)`, and the only randomness available to
//! tasks is the seeded RNG in [`SimHandle::rng_u64`]. Running the same
//! program twice produces identical traces, which is what makes the
//! paper's trace figures (Figure 9/10/12) exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use pathways_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(42);
//! let h = sim.handle();
//! let task = sim.spawn("worker", async move {
//!     h.sleep(SimDuration::from_micros(10)).await;
//!     h.now()
//! });
//! let outcome = sim.run();
//! assert!(outcome.is_quiescent());
//! assert_eq!(task.try_take().unwrap().as_nanos(), 10_000);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::hash::FxHashMap;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;
use crate::wheel::TimerWheel;

/// Identifier of a spawned task within one [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Queue of task ids woken and awaiting a poll.
///
/// Shared with wakers through an `Arc` so the waker type satisfies the
/// `Send + Sync` contract of [`std::task::Waker`] even though the
/// simulation itself is single-threaded.
#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        self.queue.lock().push_back(id);
    }

    fn pop(&self) -> Option<TaskId> {
        self.queue.lock().pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

struct TaskEntry {
    name: String,
    future: Pin<Box<dyn Future<Output = ()>>>,
    idle: Option<IdleToken>,
}

/// Marker a long-running service task uses to tell the executor it is
/// parked waiting for work (as opposed to stuck mid-operation).
///
/// Quiescence detection treats a pending task whose token reads *idle* as
/// finished: an accelerator waiting for its next kernel is not a
/// deadlock, but an accelerator blocked inside a gang collective is.
#[derive(Debug, Clone, Default)]
pub struct IdleToken {
    idle: Rc<std::cell::Cell<bool>>,
}

impl IdleToken {
    /// Creates a token in the *busy* state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the owning task idle (parked awaiting work).
    pub fn set_idle(&self) {
        self.idle.set(true);
    }

    /// Marks the owning task busy (processing an operation).
    pub fn set_busy(&self) {
        self.idle.set(false);
    }

    /// Reads the current state.
    pub fn is_idle(&self) -> bool {
        self.idle.get()
    }
}

struct Inner {
    now: SimTime,
    timers: TimerWheel<Waker>,
    tasks: FxHashMap<TaskId, TaskEntry>,
    next_task: u64,
    next_seq: u64,
    rng: StdRng,
    trace: TraceLog,
    /// Total number of task polls performed (for introspection/benches).
    polls: u64,
}

impl Inner {
    fn register_timer(&mut self, deadline: SimTime, waker: Waker) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.timers.insert(deadline, seq, waker);
    }
}

/// Outcome of [`Sim::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every spawned task ran to completion.
    Quiescent {
        /// Virtual time when the last event fired.
        time: SimTime,
    },
    /// Some tasks are still pending but no timer can wake them: the
    /// simulated system is deadlocked (or waiting on an external stimulus
    /// that will never arrive). The names of the stuck tasks are reported
    /// for diagnosis.
    Deadlock {
        /// Virtual time at which progress stopped.
        time: SimTime,
        /// Names of tasks that can never be woken again.
        stuck_tasks: Vec<String>,
    },
}

impl RunOutcome {
    /// Returns true if the run ended with all tasks completed.
    pub fn is_quiescent(&self) -> bool {
        matches!(self, RunOutcome::Quiescent { .. })
    }

    /// Returns true if the run ended in a deadlock.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, RunOutcome::Deadlock { .. })
    }

    /// Virtual time at which the run stopped.
    pub fn time(&self) -> SimTime {
        match self {
            RunOutcome::Quiescent { time } | RunOutcome::Deadlock { time, .. } => *time,
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// See the crate-level documentation for an overview and example.
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
    ready: Arc<ReadyQueue>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Sim")
            .field("now", &inner.now)
            .field("live_tasks", &inner.tasks.len())
            .field("pending_timers", &inner.timers.len())
            .finish()
    }
}

impl Sim {
    /// Creates a simulation whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Rc::new(RefCell::new(Inner {
                now: SimTime::ZERO,
                timers: TimerWheel::new(),
                tasks: FxHashMap::default(),
                next_task: 0,
                next_seq: 0,
                rng: StdRng::seed_from_u64(seed),
                trace: TraceLog::new(),
                polls: 0,
            })),
            ready: Arc::new(ReadyQueue::default()),
        }
    }

    /// Returns a cloneable handle for use inside tasks.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            inner: Rc::downgrade(&self.inner),
            ready: Arc::clone(&self.ready),
        }
    }

    /// Spawns a task and returns a handle to its eventual output.
    ///
    /// The `name` is used in deadlock reports and traces.
    pub fn spawn<T: 'static>(
        &mut self,
        name: impl Into<String>,
        future: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        self.handle().spawn(name, future)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Number of task polls performed so far.
    pub fn poll_count(&self) -> u64 {
        self.inner.borrow().polls
    }

    /// Takes the accumulated trace events, leaving the log empty.
    pub fn take_trace(&self) -> TraceLog {
        std::mem::take(&mut self.inner.borrow_mut().trace)
    }

    /// Runs until every task completes or no further progress is possible.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until_time(SimTime::MAX)
    }

    /// Runs until quiescence, deadlock, or the clock reaching `limit`
    /// (whichever comes first). Timers beyond `limit` are left pending.
    pub fn run_until_time(&mut self, limit: SimTime) -> RunOutcome {
        // One waker buffer for the whole run: `pop_batch_into` refills
        // it in place, so advancing time allocates nothing.
        let mut wakers = Vec::new();
        loop {
            // Drain the ready queue in FIFO order.
            while let Some(id) = self.ready.pop() {
                self.poll_task(id);
            }
            // Advance virtual time to the next deadline, taking *every*
            // timer that shares it in one batch pop (one wheel operation
            // per simulated instant instead of one heap pop per timer).
            let fired = {
                let mut inner = self.inner.borrow_mut();
                match inner.timers.pop_batch_into(limit, &mut wakers) {
                    Some(deadline) => {
                        debug_assert!(deadline >= inner.now, "timer in the past");
                        inner.now = deadline.max(inner.now);
                        true
                    }
                    None => false,
                }
            };
            if !fired {
                break;
            }
            // Wake each timer and drain the ready queue before the
            // next waker fires — the exact interleaving of the old
            // pop-per-timer loop. Nothing can join this batch
            // mid-drain: `Sleep` never registers a timer at
            // `deadline == now`.
            for waker in wakers.drain(..) {
                waker.wake();
                while let Some(id) = self.ready.pop() {
                    self.poll_task(id);
                }
            }
        }
        let inner = self.inner.borrow();
        if inner.tasks.is_empty() || !inner.timers.is_empty() {
            // All done, or stopped by the time limit with timers pending.
            RunOutcome::Quiescent { time: inner.now }
        } else {
            let mut stuck: Vec<String> = inner
                .tasks
                .values()
                .filter(|t| !t.idle.as_ref().is_some_and(IdleToken::is_idle))
                .map(|t| t.name.clone())
                .collect();
            stuck.sort();
            if stuck.is_empty() {
                // Only parked service tasks remain: quiescent.
                RunOutcome::Quiescent { time: inner.now }
            } else {
                RunOutcome::Deadlock {
                    time: inner.now,
                    stuck_tasks: stuck,
                }
            }
        }
    }

    /// Runs the simulation and panics with the stuck-task list if it
    /// deadlocks. Convenient in tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks.
    pub fn run_to_quiescence(&mut self) -> SimTime {
        match self.run() {
            RunOutcome::Quiescent { time } => time,
            RunOutcome::Deadlock { time, stuck_tasks } => {
                panic!("simulation deadlocked at {time} with stuck tasks: {stuck_tasks:?}")
            }
        }
    }

    fn poll_task(&mut self, id: TaskId) {
        // Remove the task so the RefCell borrow is released while polling;
        // the polled future may spawn tasks or register timers.
        let entry = self.inner.borrow_mut().tasks.remove(&id);
        let Some(mut entry) = entry else {
            return; // already completed; stale wake
        };
        self.inner.borrow_mut().polls += 1;
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.ready),
        }));
        let mut cx = Context::from_waker(&waker);
        match entry.future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {}
            Poll::Pending => {
                self.inner.borrow_mut().tasks.insert(id, entry);
            }
        }
    }
}

/// Cloneable handle to a [`Sim`], usable from inside tasks.
#[derive(Clone)]
pub struct SimHandle {
    inner: Weak<RefCell<Inner>>,
    ready: Arc<ReadyQueue>,
}

impl fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimHandle")
            .field("now", &self.now())
            .finish()
    }
}

impl SimHandle {
    fn upgrade(&self) -> Rc<RefCell<Inner>> {
        self.inner
            .upgrade()
            .expect("SimHandle used after its Sim was dropped")
    }

    /// Current virtual time.
    ///
    /// # Panics
    ///
    /// Panics if the owning [`Sim`] has been dropped.
    pub fn now(&self) -> SimTime {
        self.upgrade().borrow().now
    }

    /// Returns a future that resolves after `duration` of virtual time.
    pub fn sleep(&self, duration: SimDuration) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline: None,
            duration,
        }
    }

    /// Returns a future that resolves at the given instant (immediately if
    /// `deadline` is in the past).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline: Some(deadline),
            duration: SimDuration::ZERO,
        }
    }

    /// Yields to other ready tasks once.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Spawns a task onto the simulation.
    pub fn spawn<T: 'static>(
        &self,
        name: impl Into<String>,
        future: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        self.spawn_inner(name, None, future)
    }

    /// Spawns a long-running service task carrying an [`IdleToken`].
    ///
    /// Clone the token into the future and call
    /// [`IdleToken::set_idle`]/[`IdleToken::set_busy`] around its
    /// wait-for-work point; an idle service task does not count as a
    /// deadlock when the rest of the simulation drains.
    pub fn spawn_service<T: 'static>(
        &self,
        name: impl Into<String>,
        token: &IdleToken,
        future: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        self.spawn_inner(name, Some(token.clone()), future)
    }

    fn spawn_inner<T: 'static>(
        &self,
        name: impl Into<String>,
        idle: Option<IdleToken>,
        future: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
            finished: false,
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let out = future.await;
            let mut st = state2.borrow_mut();
            st.result = Some(out);
            st.finished = true;
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        };
        let inner_rc = self.upgrade();
        let id = {
            let mut inner = inner_rc.borrow_mut();
            let id = TaskId(inner.next_task);
            inner.next_task += 1;
            inner.tasks.insert(
                id,
                TaskEntry {
                    name: name.into(),
                    future: Box::pin(wrapped),
                    idle,
                },
            );
            id
        };
        self.ready.push(id);
        JoinHandle {
            state,
            id,
            sim: Rc::downgrade(&inner_rc),
        }
    }

    /// Draws a uniformly random `u64` from the simulation's seeded RNG.
    pub fn rng_u64(&self) -> u64 {
        self.upgrade().borrow_mut().rng.random()
    }

    /// Draws a uniformly random value in `[0, bound)` from the seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn rng_range(&self, bound: u64) -> u64 {
        assert!(bound > 0, "rng_range bound must be positive");
        self.upgrade().borrow_mut().rng.random_range(0..bound)
    }

    /// Records a span on the shared trace log.
    pub fn trace_span(
        &self,
        track: impl Into<String>,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        self.upgrade()
            .borrow_mut()
            .trace
            .record(track, label, start, end);
    }

    /// Runs `f` with mutable access to the trace log.
    pub fn with_trace<R>(&self, f: impl FnOnce(&mut TraceLog) -> R) -> R {
        f(&mut self.upgrade().borrow_mut().trace)
    }
}

/// Future returned by [`SimHandle::sleep`].
#[derive(Debug)]
pub struct Sleep {
    handle: SimHandle,
    deadline: Option<SimTime>,
    duration: SimDuration,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let inner_rc = self.handle.upgrade();
        let mut inner = inner_rc.borrow_mut();
        match self.deadline {
            None => {
                // First poll: register the timer.
                let deadline = inner.now + self.duration;
                self.deadline = Some(deadline);
                if deadline <= inner.now {
                    return Poll::Ready(());
                }
                inner.register_timer(deadline, cx.waker().clone());
                Poll::Pending
            }
            Some(deadline) => {
                if inner.now >= deadline {
                    Poll::Ready(())
                } else {
                    inner.register_timer(deadline, cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

/// Future returned by [`SimHandle::yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Handle to the output of a spawned task.
///
/// Awaiting the handle yields the task's output. Dropping it detaches the
/// task (the task keeps running).
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
    id: TaskId,
    sim: Weak<RefCell<Inner>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("task", &self.id)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// Returns true if the task has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }

    /// Takes the output if the task has completed and the output has not
    /// been taken yet.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// Forcibly removes the task from the executor.
    ///
    /// Used to model abrupt client/program failure: the task simply never
    /// runs again, exactly like a process that was killed. Safe to call on
    /// completed tasks (it is then a no-op).
    pub fn abort(&self) {
        if let Some(sim) = self.sim.upgrade() {
            sim.borrow_mut().tasks.remove(&self.id);
        }
    }

    /// The id of the underlying task.
    pub fn id(&self) -> TaskId {
        self.id
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.result.take() {
            Poll::Ready(v)
        } else if st.finished {
            panic!("JoinHandle polled after output was taken");
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Awaits every handle in `handles`, returning outputs in order.
///
/// Concurrency comes from the tasks themselves (they were already
/// spawned); this helper merely collects their results.
pub async fn join_all<T>(handles: Vec<JoinHandle<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_is_quiescent_at_zero() {
        let mut sim = Sim::new(0);
        let outcome = sim.run();
        assert_eq!(
            outcome,
            RunOutcome::Quiescent {
                time: SimTime::ZERO
            }
        );
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        sim.spawn("sleeper", async move {
            h.sleep(SimDuration::from_millis(5)).await;
        });
        let t = sim.run_to_quiescence();
        assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(5));
    }

    #[test]
    fn sleeps_compose_sequentially() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let jh = sim.spawn("seq", async move {
            h.sleep(SimDuration::from_micros(3)).await;
            let mid = h.now();
            h.sleep(SimDuration::from_micros(4)).await;
            (mid, h.now())
        });
        sim.run_to_quiescence();
        let (mid, end) = jh.try_take().unwrap();
        assert_eq!(mid.as_nanos(), 3_000);
        assert_eq!(end.as_nanos(), 7_000);
    }

    #[test]
    fn concurrent_tasks_interleave_by_deadline() {
        let mut sim = Sim::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (name, delay) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let h = sim.handle();
            let order = Rc::clone(&order);
            sim.spawn(name, async move {
                h.sleep(SimDuration::from_micros(delay)).await;
                order.borrow_mut().push(name);
            });
        }
        sim.run_to_quiescence();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn join_handle_returns_output() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let inner = sim.spawn("inner", async move {
            h.sleep(SimDuration::from_micros(1)).await;
            41
        });
        let outer = sim.spawn("outer", async move { inner.await + 1 });
        sim.run_to_quiescence();
        assert_eq!(outer.try_take(), Some(42));
    }

    #[test]
    fn deadlock_is_detected_and_reports_task_names() {
        let mut sim = Sim::new(0);
        let (_tx, mut rx) = crate::channel::channel::<u32>();
        sim.spawn("waiter", async move {
            // _tx is never used to send and never dropped before run, so
            // this blocks forever.
            let _ = rx.recv().await;
        });
        match sim.run() {
            RunOutcome::Deadlock { stuck_tasks, .. } => {
                assert_eq!(stuck_tasks, vec!["waiter".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn abort_removes_task() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let flag = Rc::new(RefCell::new(false));
        let flag2 = Rc::clone(&flag);
        let jh = sim.spawn("doomed", async move {
            h.sleep(SimDuration::from_secs(1)).await;
            *flag2.borrow_mut() = true;
        });
        jh.abort();
        let outcome = sim.run();
        assert!(outcome.is_quiescent());
        assert!(!*flag.borrow());
        assert!(!jh.is_finished());
    }

    #[test]
    fn run_until_time_stops_early() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        sim.spawn("late", async move {
            h.sleep(SimDuration::from_secs(10)).await;
        });
        let out = sim.run_until_time(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(out.is_quiescent());
        assert_eq!(sim.now(), SimTime::ZERO);
        // Resuming without a limit finishes the task.
        assert!(sim.run().is_quiescent());
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(10));
    }

    #[test]
    fn yield_now_round_robins_ready_tasks() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["x", "y"] {
            let h = sim.handle();
            let log = Rc::clone(&log);
            sim.spawn(name, async move {
                for i in 0..2 {
                    log.borrow_mut().push(format!("{name}{i}"));
                    h.yield_now().await;
                }
            });
        }
        sim.run_to_quiescence();
        assert_eq!(*log.borrow(), vec!["x0", "y0", "x1", "y1"]);
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let draw = |seed| {
            let sim = Sim::new(seed);
            let h = sim.handle();
            (h.rng_u64(), h.rng_range(100))
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7).0, draw(8).0);
    }

    #[test]
    fn join_all_collects_in_order() {
        let mut sim = Sim::new(0);
        let mut handles = Vec::new();
        for i in 0..5u64 {
            let h = sim.handle();
            handles.push(sim.spawn(format!("t{i}"), async move {
                // Later tasks finish earlier; join_all must preserve order.
                h.sleep(SimDuration::from_micros(10 - i)).await;
                i
            }));
        }
        let joined = sim.spawn("join", async move { join_all(handles).await });
        sim.run_to_quiescence();
        assert_eq!(joined.try_take().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_duration_sleep_completes_without_time_advance() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        sim.spawn("zero", async move {
            h.sleep(SimDuration::ZERO).await;
        });
        assert_eq!(sim.run_to_quiescence(), SimTime::ZERO);
    }
}
