//! Unbounded MPSC and oneshot channels for simulation tasks.
//!
//! These mirror the tokio channel APIs and run on both executor
//! backends: under the deterministic backend messages are delivered in
//! send order and receivers are woken through the executor's FIFO ready
//! queue; under the threaded backend the same types are `Send`-safe and
//! wakes are issued after the channel lock is released so a woken task
//! can start on another worker immediately.

use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

/// Error returned by [`Sender::send`] when the receiver was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiver was dropped")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// All senders were dropped and the queue is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel is empty"),
            TryRecvError::Disconnected => write!(f, "channel is disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

struct ChanInner<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    inner: Arc<Mutex<ChanInner<T>>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender")
            .field("queued", &self.inner.lock().queue.len())
            .finish()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut inner = self.inner.lock();
            inner.senders -= 1;
            if inner.senders == 0 {
                inner.recv_waker.take()
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a message, waking the receiver.
    ///
    /// # Errors
    ///
    /// Returns the message back if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let waker = {
            let mut inner = self.inner.lock();
            if !inner.receiver_alive {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            inner.recv_waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }

    /// Returns true if the receiving half is still alive.
    pub fn is_open(&self) -> bool {
        self.inner.lock().receiver_alive
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: Arc<Mutex<ChanInner<T>>>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver")
            .field("queued", &self.inner.lock().queue.len())
            .finish()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.lock().receiver_alive = false;
    }
}

impl<T> Receiver<T> {
    /// Awaits the next message; `None` once all senders are dropped and
    /// the queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if no message is queued,
    /// [`TryRecvError::Disconnected`] if the channel is closed and empty.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        let mut inner = self.inner.lock();
        match inner.queue.pop_front() {
            Some(v) => Ok(v),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Returns true if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> fmt::Debug for Recv<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recv").finish_non_exhaustive()
    }
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut inner = self.receiver.inner.lock();
        match inner.queue.pop_front() {
            Some(v) => Poll::Ready(Some(v)),
            None if inner.senders == 0 => Poll::Ready(None),
            None => {
                inner.recv_waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Creates an unbounded MPSC channel.
///
/// # Examples
///
/// ```
/// use pathways_sim::{channel, Sim};
///
/// let mut sim = Sim::new(0);
/// let (tx, mut rx) = channel::channel();
/// sim.spawn("producer", async move {
///     tx.send(7u32).unwrap();
/// });
/// let consumer = sim.spawn("consumer", async move { rx.recv().await });
/// sim.run_to_quiescence();
/// assert_eq!(consumer.try_take().unwrap(), Some(7));
/// ```
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Mutex::new(ChanInner {
        queue: VecDeque::new(),
        recv_waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

// ---------------------------------------------------------------------------
// Oneshot
// ---------------------------------------------------------------------------

struct OneshotInner<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
    receiver_alive: bool,
}

/// Sending half of a oneshot channel.
pub struct OneshotSender<T> {
    inner: Arc<Mutex<OneshotInner<T>>>,
}

impl<T> fmt::Debug for OneshotSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OneshotSender").finish_non_exhaustive()
    }
}

/// Receiving half of a oneshot channel; a future yielding
/// `Result<T, RecvError>`.
pub struct OneshotReceiver<T> {
    inner: Arc<Mutex<OneshotInner<T>>>,
}

impl<T> fmt::Debug for OneshotReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OneshotReceiver").finish_non_exhaustive()
    }
}

/// Error yielded when the oneshot sender was dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oneshot sender dropped without sending")
    }
}

impl std::error::Error for RecvError {}

impl<T> OneshotSender<T> {
    /// Delivers the value, waking the receiver.
    ///
    /// # Errors
    ///
    /// Returns the value back if the receiver was dropped.
    pub fn send(self, value: T) -> Result<(), T> {
        let waker = {
            let mut inner = self.inner.lock();
            if !inner.receiver_alive {
                return Err(value);
            }
            inner.value = Some(value);
            inner.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut inner = self.inner.lock();
            inner.sender_alive = false;
            inner.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Drop for OneshotReceiver<T> {
    fn drop(&mut self) {
        self.inner.lock().receiver_alive = false;
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.inner.lock();
        if let Some(v) = inner.value.take() {
            Poll::Ready(Ok(v))
        } else if !inner.sender_alive {
            Poll::Ready(Err(RecvError))
        } else {
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Creates a oneshot channel.
///
/// # Examples
///
/// ```
/// use pathways_sim::{channel, Sim};
///
/// let mut sim = Sim::new(0);
/// let (tx, rx) = channel::oneshot();
/// sim.spawn("sender", async move {
///     tx.send("done").unwrap();
/// });
/// let r = sim.spawn("receiver", async move { rx.await });
/// sim.run_to_quiescence();
/// assert_eq!(r.try_take().unwrap(), Ok("done"));
/// ```
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let inner = Arc::new(Mutex::new(OneshotInner {
        value: None,
        waker: None,
        sender_alive: true,
        receiver_alive: true,
    }));
    (
        OneshotSender {
            inner: Arc::clone(&inner),
        },
        OneshotReceiver { inner },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Sim;
    use crate::time::SimDuration;

    #[test]
    fn messages_delivered_in_order() {
        let mut sim = Sim::new(0);
        let (tx, mut rx) = channel::<u32>();
        sim.spawn("producer", async move {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let consumer = sim.spawn("consumer", async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        sim.run_to_quiescence();
        assert_eq!(consumer.try_take().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_returns_none_when_all_senders_drop() {
        let mut sim = Sim::new(0);
        let (tx, mut rx) = channel::<u32>();
        let tx2 = tx.clone();
        let h = sim.handle();
        sim.spawn("p1", async move {
            tx.send(1).unwrap();
        });
        let h2 = h.clone();
        sim.spawn("p2", async move {
            h2.sleep(SimDuration::from_micros(5)).await;
            tx2.send(2).unwrap();
        });
        let consumer = sim.spawn("c", async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        sim.run_to_quiescence();
        assert_eq!(consumer.try_take().unwrap(), vec![1, 2]);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
        assert!(!tx.is_open());
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, mut rx) = channel::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn oneshot_delivers_value() {
        let mut sim = Sim::new(0);
        let (tx, rx) = oneshot::<&str>();
        let h = sim.handle();
        sim.spawn("s", async move {
            h.sleep(SimDuration::from_micros(1)).await;
            tx.send("hi").unwrap();
        });
        let r = sim.spawn("r", rx);
        sim.run_to_quiescence();
        assert_eq!(r.try_take().unwrap(), Ok("hi"));
    }

    #[test]
    fn oneshot_sender_drop_wakes_with_error() {
        let mut sim = Sim::new(0);
        let (tx, rx) = oneshot::<u32>();
        sim.spawn("s", async move {
            drop(tx);
        });
        let r = sim.spawn("r", rx);
        sim.run_to_quiescence();
        assert_eq!(r.try_take().unwrap(), Err(RecvError));
    }

    #[test]
    fn oneshot_send_to_dropped_receiver_errors() {
        let (tx, rx) = oneshot::<u32>();
        drop(rx);
        assert_eq!(tx.send(5), Err(5));
    }
}
