//! Deterministic fault injection primitives.
//!
//! A [`FaultPlan`] is a script of `(virtual time, fault)` entries
//! registered on the simulation before it runs. The plan's driver task
//! sleeps on the executor's timer wheel like every other task, so fault
//! delivery is ordered by `(deadline, registration order)` exactly like
//! any other event — the same seed and plan always reproduce the same
//! interleaving, bit for bit. That replayability is the point: a fault
//! schedule that wedges a future is a unit test, not a flake.
//!
//! [`FaultSignal`] is the observation side: a cheap, cloneable death
//! flag a component (a simulated accelerator, a host agent) checks at
//! its operation boundaries. Once fired it never resets, and it records
//! when and why it fired for diagnostics.
//!
//! The payload type `F` is opaque to this crate — the runtime layers
//! define their own fault vocabulary (kill device, kill host, sever a
//! link) and apply it from the callback.
//!
//! ```
//! use pathways_sim::{FaultPlan, Sim, SimDuration, SimTime};
//! use parking_lot::Mutex;
//! use std::sync::Arc;
//!
//! let mut sim = Sim::new(0);
//! let hits: Arc<Mutex<Vec<(u64, &str)>>> = Arc::default();
//! let hits2 = Arc::clone(&hits);
//! FaultPlan::new()
//!     .at(SimTime::from_nanos(2_000), "kill-b")
//!     .at(SimTime::from_nanos(1_000), "kill-a")
//!     .spawn(&sim.handle(), move |at, fault| {
//!         hits2.lock().push((at.as_nanos(), fault));
//!     });
//! sim.run_to_quiescence();
//! // Entries fire in virtual-time order regardless of insertion order.
//! assert_eq!(*hits.lock(), vec![(1_000, "kill-a"), (2_000, "kill-b")]);
//! ```

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::exec::{JoinHandle, SimHandle};
use crate::time::SimTime;

/// When and why a [`FaultSignal`] fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultStamp {
    /// Virtual time of the fault.
    pub at: SimTime,
    /// Human-readable cause (used in traces and error payloads).
    pub reason: String,
}

/// A one-way death flag: unset until [`FaultSignal::fire`], then set
/// forever. Cloneable; all clones observe the same state.
#[derive(Clone, Default)]
pub struct FaultSignal {
    inner: Arc<Mutex<Option<FaultStamp>>>,
}

impl fmt::Debug for FaultSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultSignal")
            .field("fired", &self.inner.lock().as_ref().map(|s| s.at))
            .finish()
    }
}

impl FaultSignal {
    /// Creates an unfired signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the signal. Idempotent: the first stamp wins.
    pub fn fire(&self, at: SimTime, reason: impl Into<String>) {
        let mut inner = self.inner.lock();
        if inner.is_none() {
            *inner = Some(FaultStamp {
                at,
                reason: reason.into(),
            });
        }
    }

    /// True once the signal has fired.
    pub fn is_failed(&self) -> bool {
        self.inner.lock().is_some()
    }

    /// The stamp of the fault, if fired.
    pub fn stamp(&self) -> Option<FaultStamp> {
        self.inner.lock().clone()
    }
}

/// A scripted schedule of faults, applied at exact virtual times.
///
/// Entries may be added in any order; the driver sorts them stably by
/// time, so two entries at the same instant fire in insertion order.
pub struct FaultPlan<F> {
    entries: Vec<(SimTime, F)>,
}

impl<F> fmt::Debug for FaultPlan<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl<F> Default for FaultPlan<F> {
    fn default() -> Self {
        FaultPlan {
            entries: Vec::new(),
        }
    }
}

impl<F: Send + 'static> FaultPlan<F> {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `fault` at virtual time `at` (builder style).
    #[must_use]
    pub fn at(mut self, at: SimTime, fault: F) -> Self {
        self.entries.push((at, fault));
        self
    }

    /// Adds an entry in place (non-builder form, for loops).
    pub fn push(&mut self, at: SimTime, fault: F) {
        self.entries.push((at, fault));
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scheduled entries, in insertion order.
    pub fn entries(&self) -> &[(SimTime, F)] {
        &self.entries
    }

    /// Spawns the plan's driver task: it sleeps to each scripted time in
    /// order and invokes `apply` with the (possibly clamped-forward)
    /// actual virtual time and the fault payload.
    pub fn spawn(
        mut self,
        handle: &SimHandle,
        mut apply: impl FnMut(SimTime, F) + Send + 'static,
    ) -> JoinHandle<()> {
        // Stable sort: same-instant faults apply in insertion order.
        self.entries.sort_by_key(|(t, _)| *t);
        let h = handle.clone();
        handle.spawn("fault-plan", async move {
            for (at, fault) in self.entries {
                h.sleep_until(at).await;
                apply(h.now(), fault);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Sim;
    use crate::time::SimDuration;

    #[test]
    fn signal_fires_once_and_keeps_first_stamp() {
        let s = FaultSignal::new();
        assert!(!s.is_failed());
        s.fire(SimTime::from_nanos(5), "first");
        s.fire(SimTime::from_nanos(9), "second");
        let stamp = s.stamp().unwrap();
        assert_eq!(stamp.at, SimTime::from_nanos(5));
        assert_eq!(stamp.reason, "first");
        // Clones share state.
        let c = s.clone();
        assert!(c.is_failed());
    }

    #[test]
    fn plan_applies_in_time_order_with_stable_ties() {
        let mut sim = Sim::new(0);
        let log: Arc<Mutex<Vec<(u64, u32)>>> = Arc::default();
        let log2 = Arc::clone(&log);
        let t = |us: u64| SimTime::ZERO + SimDuration::from_micros(us);
        FaultPlan::new()
            .at(t(3), 30u32)
            .at(t(1), 10)
            .at(t(3), 31)
            .at(t(2), 20)
            .spawn(&sim.handle(), move |at, f| {
                log2.lock().push((at.as_nanos() / 1_000, f));
            });
        sim.run_to_quiescence();
        assert_eq!(*log.lock(), vec![(1, 10), (2, 20), (3, 30), (3, 31)]);
    }

    #[test]
    fn empty_plan_is_a_noop() {
        let mut sim = Sim::new(0);
        let plan: FaultPlan<u8> = FaultPlan::new();
        assert!(plan.is_empty());
        plan.spawn(&sim.handle(), |_, _| panic!("no faults scheduled"));
        assert_eq!(sim.run_to_quiescence(), SimTime::ZERO);
    }
}
