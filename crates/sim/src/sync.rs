//! Synchronization primitives for simulation tasks.
//!
//! All primitives are FIFO-fair — waiters are released in the order they
//! first polled — and run on both executor backends: deterministic under
//! the virtual-time backend, `Send`-safe (wakes issued after internal
//! locks are released) under the threaded one.

use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

/// A counting semaphore with FIFO-fair acquisition.
///
/// Used to model bounded resources such as HBM capacity (back-pressure in
/// the object store, §4.6 of the paper) and link concurrency.
///
/// # Examples
///
/// ```
/// use pathways_sim::{sync::Semaphore, Sim, SimDuration};
///
/// let mut sim = Sim::new(0);
/// let sem = Semaphore::new(1);
/// for name in ["a", "b"] {
///     let sem = sem.clone();
///     let h = sim.handle();
///     sim.spawn(name, async move {
///         let _permit = sem.acquire(1).await;
///         h.sleep(SimDuration::from_micros(10)).await;
///     });
/// }
/// let end = sim.run_to_quiescence();
/// // The two critical sections are serialized.
/// assert_eq!(end.as_nanos(), 20_000);
/// ```
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<Mutex<SemInner>>,
}

struct SemInner {
    permits: u64,
    // (amount requested, state shared with the waiting future)
    waiters: VecDeque<Arc<Mutex<WaitState>>>,
}

struct WaitState {
    amount: u64,
    granted: bool,
    cancelled: bool,
    waker: Option<Waker>,
}

impl fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Semaphore")
            .field("permits", &inner.permits)
            .field("waiters", &inner.waiters.len())
            .finish()
    }
}

impl Semaphore {
    /// Creates a semaphore holding `permits` permits.
    pub fn new(permits: u64) -> Self {
        Semaphore {
            inner: Arc::new(Mutex::new(SemInner {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.inner.lock().permits
    }

    /// Number of queued waiters.
    pub fn waiters(&self) -> usize {
        self.inner.lock().waiters.len()
    }

    /// Acquires `amount` permits, waiting FIFO-fairly if unavailable.
    ///
    /// The returned [`Permit`] releases the permits when dropped.
    pub fn acquire(&self, amount: u64) -> Acquire {
        Acquire {
            sem: self.clone(),
            amount,
            state: None,
        }
    }

    /// Attempts to acquire permits without waiting.
    pub fn try_acquire(&self, amount: u64) -> Option<Permit> {
        let mut inner = self.inner.lock();
        // Respect FIFO fairness: cannot jump the queue.
        if inner.waiters.is_empty() && inner.permits >= amount {
            inner.permits -= amount;
            Some(Permit {
                sem: self.clone(),
                amount,
            })
        } else {
            None
        }
    }

    /// Adds permits (used to model resources growing, e.g. hosts added to
    /// an island at runtime).
    pub fn add_permits(&self, amount: u64) {
        {
            let mut inner = self.inner.lock();
            inner.permits += amount;
        }
        self.grant_waiters();
    }

    fn grant_waiters(&self) {
        loop {
            let waker = {
                let mut inner = self.inner.lock();
                // Drop cancelled waiters at the head.
                while matches!(inner.waiters.front(), Some(w) if w.lock().cancelled) {
                    inner.waiters.pop_front();
                }
                let front = match inner.waiters.pop_front() {
                    Some(w) => w,
                    None => return,
                };
                let amount = front.lock().amount;
                if inner.permits >= amount {
                    inner.permits -= amount;
                    let mut st = front.lock();
                    st.granted = true;
                    st.waker.take()
                } else {
                    // Not enough permits yet: the head keeps its place.
                    inner.waiters.push_front(front);
                    return;
                }
            };
            if let Some(w) = waker {
                w.wake();
            }
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    amount: u64,
    state: Option<Arc<Mutex<WaitState>>>,
}

impl fmt::Debug for Acquire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Acquire")
            .field("amount", &self.amount)
            .finish()
    }
}

impl Future for Acquire {
    type Output = Permit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        if self.state.is_none() {
            // First poll: either take permits immediately (if nobody is
            // queued ahead) or join the FIFO queue.
            let inner_rc = Arc::clone(&self.sem.inner);
            let mut inner = inner_rc.lock();
            if inner.waiters.is_empty() && inner.permits >= self.amount {
                inner.permits -= self.amount;
                return Poll::Ready(Permit {
                    sem: self.sem.clone(),
                    amount: self.amount,
                });
            }
            let state = Arc::new(Mutex::new(WaitState {
                amount: self.amount,
                granted: false,
                cancelled: false,
                waker: Some(cx.waker().clone()),
            }));
            inner.waiters.push_back(Arc::clone(&state));
            self.state = Some(state);
            return Poll::Pending;
        }
        let state = Arc::clone(self.state.as_ref().expect("state set above"));
        let mut st = state.lock();
        if st.granted {
            st.granted = false; // permit ownership moves into the Permit
            drop(st);
            let amount = self.amount;
            self.state = None;
            Poll::Ready(Permit {
                sem: self.sem.clone(),
                amount,
            })
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let mut st = state.lock();
            if st.granted {
                // Permits were granted but never observed; return them.
                drop(st);
                self.sem.inner.lock().permits += self.amount;
                self.sem.grant_waiters();
            } else {
                st.cancelled = true;
            }
        }
    }
}

/// RAII guard for permits acquired from a [`Semaphore`].
pub struct Permit {
    sem: Semaphore,
    amount: u64,
}

impl fmt::Debug for Permit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Permit")
            .field("amount", &self.amount)
            .finish()
    }
}

impl Permit {
    /// Number of permits held.
    pub fn amount(&self) -> u64 {
        self.amount
    }

    /// Releases the permits without waiting for drop, consuming the guard.
    pub fn release(self) {}
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.sem.inner.lock().permits += self.amount;
        self.sem.grant_waiters();
    }
}

// ---------------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------------

/// Wakes one or all waiting tasks; a minimal condition-variable analogue.
#[derive(Clone, Default)]
pub struct Notify {
    inner: Arc<Mutex<NotifyInner>>,
}

#[derive(Default)]
struct NotifyInner {
    // Pending notifications that arrived while nobody was waiting.
    stored: usize,
    waiters: VecDeque<Arc<Mutex<NotifyWait>>>,
}

struct NotifyWait {
    notified: bool,
    waker: Option<Waker>,
}

impl fmt::Debug for Notify {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Notify")
            .field("stored", &inner.stored)
            .field("waiters", &inner.waiters.len())
            .finish()
    }
}

impl Notify {
    /// Creates a notifier with no stored notifications.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes the oldest waiter, or stores the notification if none.
    pub fn notify_one(&self) {
        let waker = {
            let mut inner = self.inner.lock();
            if let Some(w) = inner.waiters.pop_front() {
                let mut st = w.lock();
                st.notified = true;
                st.waker.take()
            } else {
                inner.stored += 1;
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Wakes every currently-registered waiter (does not store).
    pub fn notify_waiters(&self) {
        let wakers: Vec<_> = {
            let mut inner = self.inner.lock();
            inner
                .waiters
                .drain(..)
                .filter_map(|w| {
                    let mut st = w.lock();
                    st.notified = true;
                    st.waker.take()
                })
                .collect()
        };
        for w in wakers {
            w.wake();
        }
    }

    /// Returns a future that resolves on the next notification.
    pub fn notified(&self) -> Notified {
        Notified {
            notify: self.clone(),
            state: None,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    notify: Notify,
    state: Option<Arc<Mutex<NotifyWait>>>,
}

impl fmt::Debug for Notified {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Notified").finish_non_exhaustive()
    }
}

impl Future for Notified {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.state.is_none() {
            let inner_rc = Arc::clone(&self.notify.inner);
            let mut inner = inner_rc.lock();
            if inner.stored > 0 {
                inner.stored -= 1;
                return Poll::Ready(());
            }
            let st = Arc::new(Mutex::new(NotifyWait {
                notified: false,
                waker: Some(cx.waker().clone()),
            }));
            inner.waiters.push_back(Arc::clone(&st));
            self.state = Some(st);
            return Poll::Pending;
        }
        let st_rc = Arc::clone(self.state.as_ref().expect("state set above"));
        let mut st = st_rc.lock();
        if st.notified {
            Poll::Ready(())
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

/// A one-shot flag that any number of tasks can wait on.
///
/// Once [`Event::set`] fires, all current and future waiters resolve
/// immediately. Used for buffer-readiness signalling (a buffer future in
/// the paper's sense: many consumers, one producer).
#[derive(Clone, Default)]
pub struct Event {
    inner: Arc<Mutex<EventInner>>,
}

#[derive(Default)]
struct EventInner {
    set: bool,
    wakers: Vec<Waker>,
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Event")
            .field("set", &self.inner.lock().set)
            .finish()
    }
}

impl Event {
    /// Creates an unset event.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the event, waking all waiters. Idempotent.
    pub fn set(&self) {
        let wakers = {
            let mut inner = self.inner.lock();
            if inner.set {
                return;
            }
            inner.set = true;
            std::mem::take(&mut inner.wakers)
        };
        for w in wakers {
            w.wake();
        }
    }

    /// True if the event has fired.
    pub fn is_set(&self) -> bool {
        self.inner.lock().set
    }

    /// Waits for the event to fire (immediately ready if it already has).
    pub fn wait(&self) -> EventWait {
        EventWait {
            event: self.clone(),
        }
    }
}

/// Future returned by [`Event::wait`].
#[derive(Debug)]
pub struct EventWait {
    event: Event,
}

impl Future for EventWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.event.inner.lock();
        if inner.set {
            Poll::Ready(())
        } else {
            inner.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

/// A reusable barrier for `n` participants.
///
/// Reproduces the rendezvous semantics of gang-scheduled collectives: all
/// participants must arrive before any proceeds.
#[derive(Clone)]
pub struct Barrier {
    inner: Arc<Mutex<BarrierInner>>,
}

struct BarrierInner {
    n: usize,
    arrived: usize,
    generation: u64,
    wakers: Vec<Waker>,
}

impl fmt::Debug for Barrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Barrier")
            .field("n", &inner.n)
            .field("arrived", &inner.arrived)
            .finish()
    }
}

impl Barrier {
    /// Creates a barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier participant count must be positive");
        Barrier {
            inner: Arc::new(Mutex::new(BarrierInner {
                n,
                arrived: 0,
                generation: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// Arrives at the barrier and waits for the remaining participants.
    ///
    /// Returns `true` for exactly one participant per generation (the
    /// "leader", the last to arrive).
    pub fn wait(&self) -> BarrierWait {
        BarrierWait {
            barrier: self.clone(),
            arrived_gen: None,
        }
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    barrier: Barrier,
    arrived_gen: Option<u64>,
}

impl fmt::Debug for BarrierWait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BarrierWait").finish_non_exhaustive()
    }
}

impl Future for BarrierWait {
    type Output = bool;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        let inner_rc = Arc::clone(&self.barrier.inner);
        let mut inner = inner_rc.lock();
        match self.arrived_gen {
            None => {
                let gen = inner.generation;
                inner.arrived += 1;
                if inner.arrived == inner.n {
                    inner.arrived = 0;
                    inner.generation += 1;
                    let wakers = std::mem::take(&mut inner.wakers);
                    drop(inner);
                    for w in wakers {
                        w.wake();
                    }
                    Poll::Ready(true)
                } else {
                    inner.wakers.push(cx.waker().clone());
                    self.arrived_gen = Some(gen);
                    Poll::Pending
                }
            }
            Some(gen) => {
                if inner.generation > gen {
                    Poll::Ready(false)
                } else {
                    inner.wakers.push(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Sim;
    use crate::time::SimDuration;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn semaphore_serializes_critical_sections() {
        let mut sim = Sim::new(0);
        let sem = Semaphore::new(2);
        for i in 0..4 {
            let sem = sem.clone();
            let h = sim.handle();
            sim.spawn(format!("t{i}"), async move {
                let _p = sem.acquire(1).await;
                h.sleep(SimDuration::from_micros(10)).await;
            });
        }
        // 4 tasks, 2 at a time, 10us each => 20us.
        assert_eq!(sim.run_to_quiescence().as_nanos(), 20_000);
    }

    #[test]
    fn semaphore_is_fifo_fair_for_large_requests() {
        let mut sim = Sim::new(0);
        let sem = Semaphore::new(4);
        let order = Arc::new(Mutex::new(Vec::new()));
        let h0 = sim.handle();
        // Hold all 4 permits briefly.
        let sem_a = sem.clone();
        sim.spawn("holder", async move {
            let p = sem_a.acquire(4).await;
            h0.sleep(SimDuration::from_micros(10)).await;
            drop(p);
        });
        // Queue a large request first, then a small one: the small one
        // must NOT overtake the large one.
        let h = sim.handle();
        let sem_b = sem.clone();
        let order_b = Arc::clone(&order);
        sim.spawn("large", async move {
            h.sleep(SimDuration::from_micros(1)).await;
            let _p = sem_b.acquire(3).await;
            order_b.lock().push("large");
        });
        let h = sim.handle();
        let sem_c = sem.clone();
        let order_c = Arc::clone(&order);
        sim.spawn("small", async move {
            h.sleep(SimDuration::from_micros(2)).await;
            let _p = sem_c.acquire(1).await;
            order_c.lock().push("small");
        });
        sim.run_to_quiescence();
        assert_eq!(*order.lock(), vec!["large", "small"]);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let mut sim = Sim::new(0);
        let sem = Semaphore::new(1);
        let sem2 = sem.clone();
        let h = sim.handle();
        sim.spawn("holder", async move {
            let _p = sem2.acquire(1).await;
            h.sleep(SimDuration::from_micros(10)).await;
        });
        let sem3 = sem.clone();
        let h2 = sim.handle();
        let probe = sim.spawn("probe", async move {
            h2.sleep(SimDuration::from_micros(1)).await;
            sem3.try_acquire(1).is_none()
        });
        sim.run_to_quiescence();
        assert!(probe.try_take().unwrap());
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn add_permits_releases_waiters() {
        let mut sim = Sim::new(0);
        let sem = Semaphore::new(0);
        let sem2 = sem.clone();
        let t = sim.spawn("waiter", async move {
            let _p = sem2.acquire(2).await;
            true
        });
        let sem3 = sem.clone();
        let h = sim.handle();
        sim.spawn("grower", async move {
            h.sleep(SimDuration::from_micros(1)).await;
            sem3.add_permits(2);
        });
        sim.run_to_quiescence();
        assert_eq!(t.try_take(), Some(true));
    }

    #[test]
    fn notify_stores_early_notifications() {
        let mut sim = Sim::new(0);
        let n = Notify::new();
        n.notify_one();
        let n2 = n.clone();
        let t = sim.spawn("w", async move {
            n2.notified().await;
            true
        });
        sim.run_to_quiescence();
        assert_eq!(t.try_take(), Some(true));
    }

    #[test]
    fn notify_waiters_wakes_all_registered() {
        let mut sim = Sim::new(0);
        let n = Notify::new();
        let count = Arc::new(AtomicU32::new(0));
        for i in 0..3 {
            let n = n.clone();
            let count = Arc::clone(&count);
            sim.spawn(format!("w{i}"), async move {
                n.notified().await;
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        let n2 = n.clone();
        let h = sim.handle();
        sim.spawn("notifier", async move {
            h.sleep(SimDuration::from_micros(1)).await;
            n2.notify_waiters();
        });
        sim.run_to_quiescence();
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn barrier_releases_all_at_once_with_single_leader() {
        let mut sim = Sim::new(0);
        let barrier = Barrier::new(3);
        let leaders = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for i in 0..3u64 {
            let b = barrier.clone();
            let h = sim.handle();
            let leaders = Arc::clone(&leaders);
            handles.push(sim.spawn(format!("p{i}"), async move {
                h.sleep(SimDuration::from_micros(i * 10)).await;
                if b.wait().await {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
                h.now()
            }));
        }
        sim.run_to_quiescence();
        // Everyone is released when the last participant arrives at t=20us.
        for h in &handles {
            assert_eq!(h.try_take().unwrap().as_nanos(), 20_000);
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let mut sim = Sim::new(0);
        let barrier = Barrier::new(2);
        for i in 0..2u64 {
            let b = barrier.clone();
            let h = sim.handle();
            sim.spawn(format!("p{i}"), async move {
                for round in 0..3u64 {
                    h.sleep(SimDuration::from_micros(i + round)).await;
                    b.wait().await;
                }
            });
        }
        assert!(sim.run().is_quiescent());
    }

    #[test]
    fn event_wakes_all_waiters_and_stays_set() {
        let mut sim = Sim::new(0);
        let ev = Event::new();
        let count = Arc::new(AtomicU32::new(0));
        for i in 0..3 {
            let ev = ev.clone();
            let count = Arc::clone(&count);
            sim.spawn(format!("w{i}"), async move {
                ev.wait().await;
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        let ev2 = ev.clone();
        let h = sim.handle();
        sim.spawn("setter", async move {
            h.sleep(SimDuration::from_micros(2)).await;
            ev2.set();
            ev2.set(); // idempotent
        });
        sim.run_to_quiescence();
        assert_eq!(count.load(Ordering::SeqCst), 3);
        assert!(ev.is_set());
        // Late waiter resolves immediately.
        let mut sim2 = Sim::new(0);
        let late = sim2.spawn("late", async move { ev.wait().await });
        sim2.run_to_quiescence();
        assert!(late.is_finished());
    }

    #[test]
    fn cancelled_acquire_does_not_leak_permits() {
        let mut sim = Sim::new(0);
        let sem = Semaphore::new(1);
        let sem_holder = sem.clone();
        let h = sim.handle();
        sim.spawn("holder", async move {
            let _p = sem_holder.acquire(1).await;
            h.sleep(SimDuration::from_micros(10)).await;
        });
        // This waiter is aborted while queued.
        let sem_w = sem.clone();
        let h2 = sim.handle();
        let doomed = sim.spawn("doomed", async move {
            h2.sleep(SimDuration::from_micros(1)).await;
            let _p = sem_w.acquire(1).await;
            unreachable!("aborted before acquiring");
        });
        let h3 = sim.handle();
        let doom_ref = Arc::new(doomed);
        let doom2 = Arc::clone(&doom_ref);
        sim.spawn("killer", async move {
            h3.sleep(SimDuration::from_micros(5)).await;
            doom2.abort();
        });
        // A later waiter must still get the permit.
        let sem_l = sem.clone();
        let h4 = sim.handle();
        let late = sim.spawn("late", async move {
            h4.sleep(SimDuration::from_micros(6)).await;
            let _p = sem_l.acquire(1).await;
            true
        });
        sim.run_to_quiescence();
        assert_eq!(late.try_take(), Some(true));
        assert_eq!(sem.available(), 1);
    }
}
