//! A fast, deterministic hasher for hot-path index maps.
//!
//! The warehouse-scale indexes (store owner/device maps, gang member
//! maps, …) are keyed by small fixed-width ids and hit a dozen-plus
//! times per scheduled kernel. `std`'s default SipHash is designed to
//! resist hash-flooding from untrusted keys; simulation-internal ids
//! are trusted, so those maps use this Fx-style multiply-rotate hasher
//! instead (the scheme rustc itself uses for its interner tables) and
//! get lookups several times cheaper.
//!
//! Determinism note: unlike `RandomState`, this hasher is *stable
//! across processes*, so even accidental reliance on iteration order
//! would replay identically. (The index users never iterate their
//! maps; ordered reads go through explicit sorts.)

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by trusted fixed-width ids, hashed with [`FxHasher`].
// The deterministic aliases are the one legitimate naming of the std
// containers (clippy.toml bans them everywhere else).
#[allow(clippy::disallowed_types)]
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` of trusted fixed-width ids, hashed with [`FxHasher`].
#[allow(clippy::disallowed_types)]
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher for trusted, fixed-width keys.
///
/// Not flood-resistant — never use it for keys an adversary controls.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m1: FxHashMap<u32, &str> = FxHashMap::default();
        m1.insert(7, "seven");
        let mut m2: FxHashMap<u32, &str> = FxHashMap::default();
        m2.insert(7, "seven");
        assert_eq!(m1.get(&7), m2.get(&7));
    }

    #[test]
    fn distinct_ids_spread() {
        // Sanity: sequential ids must not collapse onto one bucket hash.
        let hashes: FxHashSet<u64> = (0u32..1000)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u32(i);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn byte_slices_hash_stably() {
        let mut a = FxHasher::default();
        a.write(b"warehouse-scale");
        let mut b = FxHasher::default();
        b.write(b"warehouse-scale");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"warehouse-scalf");
        assert_ne!(a.finish(), c.finish());
    }
}
