//! Trace recording and ASCII rendering.
//!
//! The paper presents several results as execution traces (Figures 9, 10,
//! 11 and 12: gang-scheduled interleavings, pipeline bubbles, DCN
//! transfers). Simulation tasks record spans here; the experiment binaries
//! render them as ASCII timelines so the interleavings can be inspected
//! and asserted on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// One recorded span: `track` is the timeline row (e.g. a device), `label`
/// identifies what ran (e.g. a client/program id).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Timeline row this span belongs to (typically one per device).
    pub track: String,
    /// What occupied the row (program id, transfer, etc.).
    pub label: String,
    /// Span start (inclusive).
    pub start: SimTime,
    /// Span end (exclusive).
    pub end: SimTime,
}

impl TraceSpan {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }
}

/// An append-only log of [`TraceSpan`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    spans: Vec<TraceSpan>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a span.
    pub fn record(
        &mut self,
        track: impl Into<String>,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        self.spans.push(TraceSpan {
            track: track.into(),
            label: label.into(),
            start,
            end,
        });
    }

    /// All spans in recording order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns true if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans on one track, in recording order.
    pub fn track(&self, track: &str) -> Vec<&TraceSpan> {
        self.spans.iter().filter(|s| s.track == track).collect()
    }

    /// Total busy time per label on a track (used to check
    /// proportional-share ratios in the Figure 9 reproduction).
    pub fn busy_by_label(&self, track: &str) -> BTreeMap<String, SimDuration> {
        let mut out: BTreeMap<String, SimDuration> = BTreeMap::new();
        for s in self.spans.iter().filter(|s| s.track == track) {
            *out.entry(s.label.clone()).or_default() += s.duration();
        }
        out
    }

    /// Fraction of `[start, end)` during which `track` has a span.
    ///
    /// Overlapping spans are merged, so the result is at most 1.0.
    pub fn utilization(&self, track: &str, start: SimTime, end: SimTime) -> f64 {
        let window = end.saturating_duration_since(start);
        if window.is_zero() {
            return 0.0;
        }
        let mut intervals: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.track == track && s.end > start && s.start < end)
            .map(|s| (s.start.max(start).as_nanos(), s.end.min(end).as_nanos()))
            .collect();
        intervals.sort_unstable();
        let mut busy = 0u64;
        let mut cursor = 0u64;
        for (s, e) in intervals {
            let s = s.max(cursor);
            if e > s {
                busy += e - s;
                cursor = e;
            } else {
                cursor = cursor.max(e);
            }
        }
        busy as f64 / window.as_nanos() as f64
    }

    /// Renders tracks as an ASCII timeline, one row per track, `width`
    /// characters across the given window. Each cell shows the first
    /// character of the label occupying it ('.' when idle).
    pub fn render_ascii(&self, start: SimTime, end: SimTime, width: usize) -> String {
        let mut tracks: Vec<&str> = self
            .spans
            .iter()
            .map(|s| s.track.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        tracks.sort();
        let window = end.saturating_duration_since(start).as_nanos().max(1);
        let name_w = tracks.iter().map(|t| t.len()).max().unwrap_or(0);
        let mut out = String::new();
        for track in tracks {
            let mut row = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.track == track) {
                if s.end <= start || s.start >= end {
                    continue;
                }
                let s0 = s.start.max(start).as_nanos() - start.as_nanos();
                let s1 = s.end.min(end).as_nanos() - start.as_nanos();
                let c0 = (s0 as u128 * width as u128 / window as u128) as usize;
                let mut c1 = (s1 as u128 * width as u128 / window as u128) as usize;
                if c1 == c0 {
                    c1 = c0 + 1;
                }
                let ch = s.label.chars().next().unwrap_or('#');
                for cell in row.iter_mut().take(c1.min(width)).skip(c0) {
                    *cell = ch;
                }
            }
            let _ = writeln!(
                out,
                "{track:<name_w$} |{}|",
                row.into_iter().collect::<String>()
            );
        }
        out
    }

    /// Merges another log into this one.
    pub fn extend_from(&mut self, other: TraceLog) {
        self.spans.extend(other.spans);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn busy_by_label_sums_durations() {
        let mut log = TraceLog::new();
        log.record("dev0", "A", t(0), t(10));
        log.record("dev0", "B", t(10), t(15));
        log.record("dev0", "A", t(15), t(25));
        log.record("dev1", "A", t(0), t(100));
        let busy = log.busy_by_label("dev0");
        assert_eq!(busy["A"], SimDuration::from_micros(20));
        assert_eq!(busy["B"], SimDuration::from_micros(5));
    }

    #[test]
    fn utilization_merges_overlaps() {
        let mut log = TraceLog::new();
        log.record("dev0", "A", t(0), t(10));
        log.record("dev0", "B", t(5), t(15));
        // Busy [0,15) of [0,20) = 0.75 even though raw spans sum to 20us.
        let u = log.utilization("dev0", t(0), t(20));
        assert!((u - 0.75).abs() < 1e-9, "utilization was {u}");
    }

    #[test]
    fn utilization_clips_to_window() {
        let mut log = TraceLog::new();
        log.record("dev0", "A", t(0), t(100));
        let u = log.utilization("dev0", t(50), t(100));
        assert!((u - 1.0).abs() < 1e-9);
        assert_eq!(log.utilization("devX", t(0), t(10)), 0.0);
    }

    #[test]
    fn ascii_rendering_shows_interleaving() {
        let mut log = TraceLog::new();
        log.record("dev0", "A", t(0), t(5));
        log.record("dev0", "B", t(5), t(10));
        let art = log.render_ascii(t(0), t(10), 10);
        assert!(art.contains("AAAAABBBBB"), "got:\n{art}");
    }

    #[test]
    fn track_filters_spans() {
        let mut log = TraceLog::new();
        log.record("x", "A", t(0), t(1));
        log.record("y", "B", t(0), t(1));
        assert_eq!(log.track("x").len(), 1);
        assert_eq!(log.track("y")[0].label, "B");
        assert_eq!(log.len(), 2);
    }
}
