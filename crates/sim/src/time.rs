//! Virtual time types.
//!
//! All latencies in the simulated cluster are expressed as [`SimDuration`]
//! values and all instants as [`SimTime`]. Both are nanosecond-resolution
//! integers, so simulation arithmetic is exact and deterministic — no
//! floating-point drift between runs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in virtual time, measured in nanoseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use pathways_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(5);
/// assert_eq!(t.as_nanos(), 5_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use pathways_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_secs_f64(), 0.0025);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is later than self"),
        )
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the duration in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns true if the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub const fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }

    /// Multiplies the duration by a float scale factor (for cost models).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(7).as_micros(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_micros(10);
        assert_eq!(t1.duration_since(t0), SimDuration::from_micros(10));
        assert_eq!(t1 - SimDuration::from_micros(10), t0);
        assert_eq!(t1 - t0, SimDuration::from_micros(10));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let t0 = SimTime::from_nanos(5);
        let t1 = SimTime::from_nanos(10);
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
        assert_eq!(t1.saturating_duration_since(t0), SimDuration::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_underflow() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
