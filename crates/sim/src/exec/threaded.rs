//! The work-stealing multi-threaded backend.
//!
//! [`ThreadedExecutor`] runs the same task surface as the deterministic
//! backend on a pool of OS threads: per-worker deques with steal, a
//! real monotonic clock behind the same timer-wheel API, and `Send`-safe
//! wakers. Time reads as nanoseconds since executor start, so latencies
//! the deterministic backend *models* are here *real* (`sleep` arms a
//! real timer).
//!
//! Scheduling structure (mirroring gpui's `Production` executor and the
//! classic Chase–Lev layout, with mutexed deques instead of lock-free
//! ones — correctness first, the deques are not the hot path):
//!
//! * Each worker owns a deque. Tasks woken *by* a worker (the common
//!   A-wakes-B case) land on that worker's own deque; spawns and wakes
//!   from outside the pool land on a shared injector.
//! * A worker takes from the front of its own deque, then the injector,
//!   then steals from the *back* of a sibling's deque.
//! * A dedicated timer thread sleeps until the wheel's next deadline
//!   and fires due batches, exactly like the deterministic run loop —
//!   but against the wall clock.
//!
//! There is deliberately no fairness or ordering guarantee beyond
//! "woken tasks eventually run": code that needs determinism runs on
//! the deterministic backend; this backend exists so the controller's
//! locking is exercised under genuine parallelism.
//!
//! Task panics are caught on the worker, recorded, and re-raised from
//! [`ThreadedExecutor::run`] on the driving thread — the same
//! "panic propagates to the runner" behavior the deterministic backend
//! has by construction.

// Real wall-clock time and raw std sync primitives are the whole point
// of this module; the clippy and pathlint bans apply everywhere else.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::collections::VecDeque;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::hash::FxHashMap;
use crate::time::SimTime;
use crate::trace::TraceLog;
use crate::wheel::TimerWheel;

use super::{
    Backend, ExecutorBackend, ExecutorRef, IdleToken, RunOutcome, SimHandle, TaskFuture, TaskId,
};

/// Locks a std mutex, shrugging off poisoning (a worker that panicked
/// mid-poll never holds these locks across the panic point; state stays
/// consistent).
fn lock_std<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Pending; not queued anywhere; will be queued by the next wake.
    Idle,
    /// Sitting in a deque (or the injector) awaiting a worker.
    Queued,
    /// Being polled by a worker right now.
    Running,
    /// Finished (or aborted); the future is gone.
    Complete,
}

struct SlotInner {
    state: SlotState,
    /// Present iff state is `Idle` or `Queued`; a `Running` worker owns
    /// the future outside the lock so polls never block wakes.
    future: Option<TaskFuture>,
    /// A wake arrived while the task was `Running`; re-queue on return.
    woken: bool,
    /// Task was aborted; complete it at the next transition.
    aborted: bool,
}

/// One spawned task: its state machine plus identity.
struct TaskSlot {
    id: TaskId,
    name: String,
    idle: Option<IdleToken>,
    inner: Mutex<SlotInner>,
}

struct SlotWaker {
    slot: Arc<TaskSlot>,
    core: Weak<ThreadedCore>,
}

impl Wake for SlotWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        let Some(core) = self.core.upgrade() else {
            return;
        };
        let enqueue = {
            let mut inner = self.slot.inner.lock();
            match inner.state {
                SlotState::Idle => {
                    inner.state = SlotState::Queued;
                    true
                }
                SlotState::Running => {
                    inner.woken = true;
                    false
                }
                // Already queued or gone: the wake is subsumed.
                SlotState::Queued | SlotState::Complete => false,
            }
        };
        if enqueue {
            core.enqueue(Arc::clone(&self.slot));
        }
    }
}

struct TimerState {
    wheel: TimerWheel<Waker>,
    next_seq: u64,
}

/// Shared core of the threaded executor; handles hold a `Weak` to it.
struct ThreadedCore {
    start: Instant,
    rng: Mutex<StdRng>,
    trace: Mutex<TraceLog>,
    timers: StdMutex<TimerState>,
    timer_cv: Condvar,
    /// Spawns and wakes from outside the pool land here.
    injector: Mutex<VecDeque<Arc<TaskSlot>>>,
    /// Per-worker deques; workers pop their own front, steal others' backs.
    locals: Vec<Mutex<VecDeque<Arc<TaskSlot>>>>,
    park: StdMutex<()>,
    work_cv: Condvar,
    /// Every live task by id (for abort, shutdown, and stuck reporting).
    registry: Mutex<FxHashMap<TaskId, Arc<TaskSlot>>>,
    next_task: AtomicU64,
    /// Spawned minus completed/aborted.
    live: AtomicUsize,
    /// Tasks currently sitting in the injector or a local deque.
    queued: AtomicUsize,
    /// Workers currently inside a poll (or its requeue epilogue).
    in_flight: AtomicUsize,
    polls: AtomicU64,
    shutdown: AtomicBool,
    /// First task panic, re-raised from `run` on the driving thread.
    panic: StdMutex<Option<Box<dyn std::any::Any + Send>>>,
}

thread_local! {
    /// `(core pointer, worker index)` of the pool thread we are on, so
    /// wakes issued from a worker go to that worker's own deque.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> = const { std::cell::Cell::new(None) };
}

impl ThreadedCore {
    fn elapsed(&self) -> SimTime {
        SimTime::from_nanos(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Queues a runnable slot (state already set to `Queued`) and wakes
    /// a parked worker.
    fn enqueue(&self, slot: Arc<TaskSlot>) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        let me = std::ptr::from_ref(self) as usize;
        let local = WORKER.with(|w| match w.get() {
            Some((core, idx)) if core == me => Some(idx),
            _ => None,
        });
        match local {
            Some(idx) => self.locals[idx].lock().push_back(slot),
            None => self.injector.lock().push_back(slot),
        }
        drop(lock_std(&self.park));
        self.work_cv.notify_one();
    }

    /// Next runnable slot for worker `idx`: own front, injector, then
    /// steal a sibling's back.
    ///
    /// Each source is tried in its own statement so its lock guard drops
    /// before the next acquisition. Chaining them with `or_else` keeps
    /// the earlier guards alive for the whole expression (temporaries
    /// live to the end of the statement), and two workers stealing from
    /// each other then deadlock: A holds `locals[a]` + `injector` and
    /// wants `locals[b]` while B holds `locals[b]` and wants `injector`.
    fn find_work(&self, idx: usize) -> Option<Arc<TaskSlot>> {
        let mut slot = self.locals[idx].lock().pop_front();
        if slot.is_none() {
            slot = self.injector.lock().pop_front();
        }
        if slot.is_none() {
            let n = self.locals.len();
            slot = (1..n)
                .map(|off| (idx + off) % n)
                .find_map(|victim| self.locals[victim].lock().pop_back());
        }
        let slot = slot?;
        self.queued.fetch_sub(1, Ordering::SeqCst);
        Some(slot)
    }

    /// Marks a slot complete and drops bookkeeping. The future (if any)
    /// is returned to the caller to drop outside all locks.
    fn finish(&self, slot: &Arc<TaskSlot>) {
        self.registry.lock().remove(&slot.id);
        self.live.fetch_sub(1, Ordering::SeqCst);
    }

    /// Runs one slot: claim, poll outside locks, then retire or requeue.
    fn run_slot(self: &Arc<Self>, slot: Arc<TaskSlot>) {
        let mut future = {
            let mut inner = slot.inner.lock();
            if inner.aborted {
                inner.state = SlotState::Complete;
                let dropped = inner.future.take();
                drop(inner);
                drop(dropped);
                self.finish(&slot);
                return;
            }
            debug_assert_eq!(inner.state, SlotState::Queued, "dequeued a non-queued slot");
            inner.state = SlotState::Running;
            inner.woken = false;
            match inner.future.take() {
                Some(f) => f,
                None => {
                    inner.state = SlotState::Complete;
                    drop(inner);
                    self.finish(&slot);
                    return;
                }
            }
        };
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let waker = Waker::from(Arc::new(SlotWaker {
            slot: Arc::clone(&slot),
            core: Arc::downgrade(self),
        }));
        let mut cx = Context::from_waker(&waker);
        let polled = std::panic::catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx)));
        self.polls.fetch_add(1, Ordering::Relaxed);
        match polled {
            Err(payload) => {
                lock_std(&self.panic).get_or_insert(payload);
                slot.inner.lock().state = SlotState::Complete;
                drop(future);
                self.finish(&slot);
            }
            Ok(Poll::Ready(())) => {
                slot.inner.lock().state = SlotState::Complete;
                drop(future);
                self.finish(&slot);
            }
            Ok(Poll::Pending) => {
                let (requeue, dropped) = {
                    let mut inner = slot.inner.lock();
                    if inner.aborted {
                        inner.state = SlotState::Complete;
                        (false, Some(future))
                    } else if inner.woken {
                        inner.woken = false;
                        inner.state = SlotState::Queued;
                        inner.future = Some(future);
                        (true, None)
                    } else {
                        inner.state = SlotState::Idle;
                        inner.future = Some(future);
                        (false, None)
                    }
                };
                if let Some(f) = dropped {
                    drop(f);
                    self.finish(&slot);
                } else if requeue {
                    self.enqueue(Arc::clone(&slot));
                }
            }
        }
        // Decrement only after any requeue so quiescence detection never
        // observes queued == 0 && in_flight == 0 with a wake imminent.
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    fn worker_loop(self: Arc<Self>, idx: usize) {
        WORKER.with(|w| w.set(Some((Arc::as_ptr(&self) as usize, idx))));
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.find_work(idx) {
                Some(slot) => self.run_slot(slot),
                None => {
                    let guard = lock_std(&self.park);
                    if self.queued.load(Ordering::SeqCst) == 0
                        && !self.shutdown.load(Ordering::Acquire)
                    {
                        let _ = self.work_cv.wait_timeout(guard, Duration::from_millis(2));
                    }
                }
            }
        }
        WORKER.with(|w| w.set(None));
    }

    /// Fires due timer batches and sleeps until the next deadline (or a
    /// `register_timer` that becomes the new earliest).
    fn timer_loop(self: Arc<Self>) {
        let mut fired: Vec<Waker> = Vec::new();
        let mut guard = lock_std(&self.timers);
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let now = self.elapsed();
            if guard.wheel.pop_batch_into(now, &mut fired).is_some() {
                // Wake outside the timer lock: wakes take slot and deque
                // locks and may themselves register timers.
                drop(guard);
                for w in fired.drain(..) {
                    w.wake();
                }
                guard = lock_std(&self.timers);
                continue;
            }
            let wait = match guard.wheel.next_deadline() {
                Some(d) => {
                    let now = self.elapsed();
                    if d <= now {
                        continue;
                    }
                    Duration::from_nanos(d.duration_since(now).as_nanos())
                        .min(Duration::from_millis(50))
                }
                None => Duration::from_millis(50),
            };
            // No insert can slip between this check and the wait: both
            // hold the timer mutex.
            guard = self
                .timer_cv
                .wait_timeout(guard, wait)
                .map_or_else(|e| e.into_inner().0, |(g, _)| g);
        }
    }
}

impl ExecutorBackend for ThreadedCore {
    fn backend(&self) -> Backend {
        Backend::Threaded
    }

    fn now(&self) -> SimTime {
        self.elapsed()
    }

    fn spawn_task(&self, name: String, idle: Option<IdleToken>, future: TaskFuture) -> TaskId {
        let id = TaskId(self.next_task.fetch_add(1, Ordering::SeqCst));
        let slot = Arc::new(TaskSlot {
            id,
            name,
            idle,
            inner: Mutex::new(SlotInner {
                state: SlotState::Queued,
                future: Some(future),
                woken: false,
                aborted: false,
            }),
        });
        self.registry.lock().insert(id, Arc::clone(&slot));
        self.live.fetch_add(1, Ordering::SeqCst);
        self.enqueue(slot);
        id
    }

    fn abort_task(&self, id: TaskId) {
        let slot = self.registry.lock().get(&id).cloned();
        let Some(slot) = slot else { return };
        let (dropped, finished) = {
            let mut inner = slot.inner.lock();
            match inner.state {
                SlotState::Idle => {
                    inner.state = SlotState::Complete;
                    (inner.future.take(), true)
                }
                SlotState::Queued | SlotState::Running => {
                    inner.aborted = true;
                    (None, false)
                }
                SlotState::Complete => (None, false),
            }
        };
        drop(dropped);
        if finished {
            self.finish(&slot);
        }
    }

    fn register_timer(&self, deadline: SimTime, waker: Waker) {
        let mut st = lock_std(&self.timers);
        // Real time keeps moving between a task computing `now + dt`
        // and this insert: the timer thread may have advanced the wheel
        // cursor past `deadline` already. The wheel refuses timers in
        // the past, so clamp to fresh `now` (>= cursor, since the
        // cursor only advances to deadlines the timer thread has
        // already observed as elapsed) — the timer fires on the next
        // tick, which is the soonest an elapsed deadline can fire
        // anyway.
        let deadline = deadline.max(self.now());
        let was_earliest = st.wheel.next_deadline();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.wheel.insert(deadline, seq, waker);
        let now_earliest = was_earliest.is_none_or(|e| deadline < e);
        drop(st);
        if now_earliest {
            self.timer_cv.notify_one();
        }
    }

    fn rng_u64(&self) -> u64 {
        self.rng.lock().random()
    }

    fn rng_range(&self, bound: u64) -> u64 {
        self.rng.lock().random_range(0..bound)
    }

    fn with_trace_log(&self, f: &mut dyn FnMut(&mut TraceLog)) {
        f(&mut self.trace.lock())
    }

    fn poll_count(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }
}

/// A work-stealing multi-threaded executor over real monotonic time.
///
/// See the module documentation for the scheduling structure. Dropping
/// the executor shuts the pool down and drops any still-pending task
/// futures.
pub struct ThreadedExecutor {
    core: Arc<ThreadedCore>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for ThreadedExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedExecutor")
            .field("workers", &self.core.locals.len())
            .field("now", &self.core.elapsed())
            .field("live_tasks", &self.core.live.load(Ordering::SeqCst))
            .finish()
    }
}

impl ThreadedExecutor {
    /// Creates a pool with `workers` threads (`0` = one per available
    /// core, capped at 8) plus one timer thread; `seed` seeds the RNG.
    pub fn new(workers: usize, seed: u64) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get)
                .min(8)
        } else {
            workers
        }
        .max(1);
        let core = Arc::new(ThreadedCore {
            start: Instant::now(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            trace: Mutex::new(TraceLog::new()),
            timers: StdMutex::new(TimerState {
                wheel: TimerWheel::new(),
                next_seq: 0,
            }),
            timer_cv: Condvar::new(),
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            park: StdMutex::new(()),
            work_cv: Condvar::new(),
            registry: Mutex::new(FxHashMap::default()),
            next_task: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            polls: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            panic: StdMutex::new(None),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for idx in 0..workers {
            let core = Arc::clone(&core);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pathways-worker-{idx}"))
                    .spawn(move || core.worker_loop(idx))
                    .expect("spawn worker thread"),
            );
        }
        let timer_core = Arc::clone(&core);
        threads.push(
            std::thread::Builder::new()
                .name("pathways-timer".into())
                .spawn(move || timer_core.timer_loop())
                .expect("spawn timer thread"),
        );
        ThreadedExecutor { core, threads }
    }

    /// Number of worker threads (excluding the timer thread).
    pub fn workers(&self) -> usize {
        self.core.locals.len()
    }

    /// Returns a cloneable handle for use inside tasks.
    pub fn handle(&self) -> SimHandle {
        let weak: Weak<ThreadedCore> = Arc::downgrade(&self.core);
        SimHandle::from_backend(weak)
    }

    /// Spawns a task and returns a handle to its eventual output.
    pub fn spawn<T: Send + 'static>(
        &self,
        name: impl Into<String>,
        future: impl std::future::Future<Output = T> + Send + 'static,
    ) -> super::JoinHandle<T> {
        self.handle().spawn(name, future)
    }

    /// Nanoseconds since the executor started, as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        self.core.elapsed()
    }

    /// Number of task polls performed so far.
    pub fn poll_count(&self) -> u64 {
        self.core.polls.load(Ordering::Relaxed)
    }

    /// Takes the accumulated trace events, leaving the log empty.
    pub fn take_trace(&self) -> TraceLog {
        std::mem::take(&mut self.core.trace.lock())
    }

    /// Blocks until every task completes (or only idle-parked service
    /// tasks remain), re-raising the first task panic if one occurred.
    ///
    /// Unlike the deterministic backend this cannot *prove* a deadlock —
    /// it reports one when the pool has been provably wake-free (no
    /// queued work, no running poll, no pending timer) with non-idle
    /// tasks remaining across two consecutive samples, or after
    /// `PATHWAYS_THREADED_TIMEOUT_MS` (default 30000) without progress.
    pub fn run(&mut self) -> RunOutcome {
        let timeout = std::env::var("PATHWAYS_THREADED_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .map_or(Duration::from_secs(30), Duration::from_millis);
        let debug = std::env::var("PATHWAYS_THREADED_DEBUG").is_ok();
        let mut last_debug = Instant::now();
        let core = &self.core;
        let mut last = (u64::MAX, usize::MAX);
        let mut last_progress = Instant::now();
        let mut wakefree_since: Option<Instant> = None;
        loop {
            if debug && last_debug.elapsed() > Duration::from_secs(1) {
                last_debug = Instant::now();
                let (stuck, _) = self.stuck_tasks();
                eprintln!(
                    "[threaded] live={} queued={} in_flight={} polls={} timers={} stuck={:?}",
                    core.live.load(Ordering::SeqCst),
                    core.queued.load(Ordering::SeqCst),
                    core.in_flight.load(Ordering::SeqCst),
                    core.polls.load(Ordering::Relaxed),
                    lock_std(&core.timers).wheel.len(),
                    stuck,
                );
            }
            if let Some(payload) = lock_std(&core.panic).take() {
                std::panic::resume_unwind(payload);
            }
            let live = core.live.load(Ordering::SeqCst);
            if live == 0 {
                return RunOutcome::Quiescent {
                    time: core.elapsed(),
                };
            }
            let queued = core.queued.load(Ordering::SeqCst);
            let in_flight = core.in_flight.load(Ordering::SeqCst);
            let timers_empty = lock_std(&core.timers).wheel.is_empty();
            let wake_free = queued == 0 && in_flight == 0 && timers_empty;
            if wake_free {
                let (stuck, all_idle) = self.stuck_tasks();
                if all_idle {
                    // Only parked service tasks remain: quiescent.
                    return RunOutcome::Quiescent {
                        time: core.elapsed(),
                    };
                }
                // Require the wake-free state to persist across a gap:
                // a wake could have been mid-delivery on first sight.
                match wakefree_since {
                    Some(t) if t.elapsed() > Duration::from_millis(20) => {
                        return RunOutcome::Deadlock {
                            time: core.elapsed(),
                            stuck_tasks: stuck,
                        };
                    }
                    Some(_) => {}
                    None => wakefree_since = Some(Instant::now()),
                }
            } else {
                wakefree_since = None;
            }
            let progress = (core.polls.load(Ordering::Relaxed), live);
            if progress != last {
                last = progress;
                last_progress = Instant::now();
            } else if last_progress.elapsed() > timeout {
                let (stuck, _) = self.stuck_tasks();
                return RunOutcome::Deadlock {
                    time: core.elapsed(),
                    stuck_tasks: stuck,
                };
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Names of live non-idle tasks, and whether every live task is an
    /// idle-parked service task.
    fn stuck_tasks(&self) -> (Vec<String>, bool) {
        let registry = self.core.registry.lock();
        let mut stuck: Vec<String> = registry
            .values()
            .filter(|s| !s.idle.as_ref().is_some_and(IdleToken::is_idle))
            .map(|s| s.name.clone())
            .collect();
        let all_idle = stuck.is_empty() && !registry.is_empty() || registry.is_empty();
        drop(registry);
        stuck.sort();
        (stuck, all_idle)
    }

    /// Runs and panics with the stuck-task list on deadlock.
    ///
    /// # Panics
    ///
    /// Panics if the run deadlocks (and re-raises task panics).
    pub fn run_to_quiescence(&mut self) -> SimTime {
        match self.run() {
            RunOutcome::Quiescent { time } => time,
            RunOutcome::Deadlock { time, stuck_tasks } => {
                panic!("threaded executor stalled at {time} with stuck tasks: {stuck_tasks:?}")
            }
        }
    }
}

impl ExecutorRef for ThreadedExecutor {
    fn executor_handle(&self) -> SimHandle {
        self.handle()
    }
}

impl Drop for ThreadedExecutor {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        {
            drop(lock_std(&self.core.park));
            self.core.work_cv.notify_all();
        }
        {
            drop(lock_std(&self.core.timers));
            self.core.timer_cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Drop remaining task futures deterministically, outside all
        // slot locks (drops can trigger wakes into the dead pool, which
        // are harmless but take locks).
        let slots: Vec<Arc<TaskSlot>> = self.core.registry.lock().values().cloned().collect();
        self.core.registry.lock().clear();
        for slot in slots {
            let f = slot.inner.lock().future.take();
            drop(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::join_all;
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn threaded_sleep_elapses_real_time() {
        let mut ex = ThreadedExecutor::new(2, 0);
        let h = ex.handle();
        let jh = ex.spawn("sleeper", async move {
            let t0 = h.now();
            h.sleep(SimDuration::from_millis(5)).await;
            h.now().duration_since(t0)
        });
        assert!(ex.run().is_quiescent());
        let elapsed = jh.try_take().unwrap();
        assert!(
            elapsed >= SimDuration::from_millis(5),
            "slept only {elapsed}"
        );
    }

    #[test]
    fn threaded_tasks_run_in_parallel() {
        // With 4 workers, 4 concurrent 20ms sleeps finish in far less
        // than the 80ms serial execution would take.
        let mut ex = ThreadedExecutor::new(4, 0);
        let mut handles = Vec::new();
        for i in 0..4 {
            let h = ex.handle();
            handles.push(ex.spawn(format!("p{i}"), async move {
                h.sleep(SimDuration::from_millis(20)).await;
            }));
        }
        let t0 = Instant::now();
        let joiner = ex.spawn("join", async move { join_all(handles).await.len() });
        assert!(ex.run().is_quiescent());
        assert_eq!(joiner.try_take(), Some(4));
        assert!(
            t0.elapsed() < Duration::from_millis(70),
            "parallel sleeps took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn threaded_join_and_channels_work() {
        let mut ex = ThreadedExecutor::new(2, 0);
        let (tx, mut rx) = crate::channel::channel::<u32>();
        let h = ex.handle();
        ex.spawn("producer", async move {
            for i in 0..100 {
                if i % 10 == 0 {
                    h.sleep(SimDuration::from_micros(100)).await;
                }
                tx.send(i).unwrap();
            }
        });
        let consumer = ex.spawn("consumer", async move {
            let mut sum = 0;
            while let Some(v) = rx.recv().await {
                sum += v;
            }
            sum
        });
        assert!(ex.run().is_quiescent());
        assert_eq!(consumer.try_take(), Some(4950));
    }

    #[test]
    fn threaded_abort_prevents_completion() {
        let ex = ThreadedExecutor::new(2, 0);
        let h = ex.handle();
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        let jh = ex.spawn("doomed", async move {
            h.sleep(SimDuration::from_secs(300)).await;
            flag2.store(true, Ordering::SeqCst);
        });
        // Let the task reach its sleep, then abort it.
        std::thread::sleep(Duration::from_millis(10));
        jh.abort();
        // The timer is still armed but the task is gone; dropping the
        // wheel entry happens at executor drop. Live count must drain.
        let t0 = Instant::now();
        while ex.core.live.load(Ordering::SeqCst) > 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "abort did not drain");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!flag.load(Ordering::SeqCst));
        assert!(!jh.is_finished());
    }

    #[test]
    fn threaded_task_panic_propagates_to_run() {
        let mut ex = ThreadedExecutor::new(2, 0);
        ex.spawn("bomb", async move {
            panic!("boom from task");
        });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| ex.run())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom"), "unexpected payload {msg:?}");
    }

    #[test]
    fn threaded_idle_service_tasks_are_quiescent() {
        let mut ex = ThreadedExecutor::new(2, 0);
        let token = IdleToken::new();
        let (tx, mut rx) = crate::channel::channel::<u32>();
        let t2 = token.clone();
        ex.handle().spawn_service("svc", &token, async move {
            loop {
                t2.set_idle();
                let Some(v) = rx.recv().await else { break };
                t2.set_busy();
                let _ = v;
            }
        });
        let h = ex.handle();
        ex.spawn("client", async move {
            for i in 0..10 {
                tx.send(i).unwrap();
                h.sleep(SimDuration::from_micros(50)).await;
            }
            // tx drops here; svc sees the close and exits.
        });
        assert!(ex.run().is_quiescent());
    }

    #[test]
    fn threaded_work_stealing_spreads_load() {
        // One task spawns many CPU-bound children from inside the pool
        // (they land on one worker's deque); siblings must steal them.
        let mut ex = ThreadedExecutor::new(4, 0);
        let h = ex.handle();
        let spawner = ex.spawn("spawner", async move {
            let mut handles = Vec::new();
            for i in 0..64u64 {
                handles.push(h.spawn(format!("c{i}"), async move {
                    // Small spin so children overlap.
                    let mut acc = i;
                    for _ in 0..10_000 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    std::hint::black_box(acc);
                    1u64
                }));
            }
            join_all(handles).await.iter().sum::<u64>()
        });
        assert!(ex.run().is_quiescent());
        assert_eq!(spawner.try_take(), Some(64));
    }
}
