//! The deterministic virtual-time backend.
//!
//! A [`Sim`] owns a set of tasks and a virtual clock. Tasks are ordinary
//! Rust futures that sleep on virtual timers via
//! [`SimHandle::sleep`](super::SimHandle::sleep) and communicate through
//! the channels in [`crate::channel`] and the primitives in
//! [`crate::sync`]. Everything runs on the calling thread; futures are
//! `Send` only so the identical code also runs on the threaded backend.
//!
//! Execution is deterministic: the ready queue is FIFO, timers fire in
//! `(deadline, registration order)`, and the only randomness available
//! to tasks is the seeded RNG in
//! [`SimHandle::rng_u64`](super::SimHandle::rng_u64). Running the same
//! program twice produces identical traces, which is what makes the
//! paper's trace figures (Figure 9/10/12) exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use pathways_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(42);
//! let h = sim.handle();
//! let task = sim.spawn("worker", async move {
//!     h.sleep(SimDuration::from_micros(10)).await;
//!     h.now()
//! });
//! let outcome = sim.run();
//! assert!(outcome.is_quiescent());
//! assert_eq!(task.try_take().unwrap().as_nanos(), 10_000);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::hash::FxHashMap;
use crate::time::SimTime;
use crate::trace::TraceLog;
use crate::wheel::TimerWheel;

use super::{
    Backend, ExecutorBackend, ExecutorRef, IdleToken, JoinHandle, RunOutcome, SimHandle,
    TaskFuture, TaskId,
};

/// Queue of task ids woken and awaiting a poll.
///
/// Kept outside the main state mutex so wakers never contend with (or
/// re-enter) a locked executor: `wake` only ever touches this queue.
#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        self.queue.lock().push_back(id);
    }

    fn pop(&self) -> Option<TaskId> {
        self.queue.lock().pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

struct TaskEntry {
    name: String,
    future: TaskFuture,
    idle: Option<IdleToken>,
}

struct DetState {
    now: SimTime,
    timers: TimerWheel<Waker>,
    tasks: FxHashMap<TaskId, TaskEntry>,
    next_task: u64,
    next_seq: u64,
    rng: StdRng,
    trace: TraceLog,
    /// Total number of task polls performed (for introspection/benches).
    polls: u64,
}

impl DetState {
    fn register_timer(&mut self, deadline: SimTime, waker: Waker) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.timers.insert(deadline, seq, waker);
    }
}

/// Shared core: the backend object handles point at.
struct DetCore {
    state: Mutex<DetState>,
    ready: Arc<ReadyQueue>,
}

impl ExecutorBackend for DetCore {
    fn backend(&self) -> Backend {
        Backend::Deterministic
    }

    fn now(&self) -> SimTime {
        self.state.lock().now
    }

    fn spawn_task(&self, name: String, idle: Option<IdleToken>, future: TaskFuture) -> TaskId {
        let id = {
            let mut st = self.state.lock();
            let id = TaskId(st.next_task);
            st.next_task += 1;
            st.tasks.insert(id, TaskEntry { name, future, idle });
            id
        };
        self.ready.push(id);
        id
    }

    fn abort_task(&self, id: TaskId) {
        self.state.lock().tasks.remove(&id);
    }

    fn register_timer(&self, deadline: SimTime, waker: Waker) {
        self.state.lock().register_timer(deadline, waker);
    }

    fn rng_u64(&self) -> u64 {
        self.state.lock().rng.random()
    }

    fn rng_range(&self, bound: u64) -> u64 {
        self.state.lock().rng.random_range(0..bound)
    }

    fn with_trace_log(&self, f: &mut dyn FnMut(&mut TraceLog)) {
        f(&mut self.state.lock().trace)
    }

    fn poll_count(&self) -> u64 {
        self.state.lock().polls
    }
}

/// A deterministic discrete-event simulation.
///
/// See the module documentation for an overview and example.
pub struct Sim {
    core: Arc<DetCore>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.core.state.lock();
        f.debug_struct("Sim")
            .field("now", &st.now)
            .field("live_tasks", &st.tasks.len())
            .field("pending_timers", &st.timers.len())
            .finish()
    }
}

impl Sim {
    /// Creates a simulation whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            core: Arc::new(DetCore {
                state: Mutex::new(DetState {
                    now: SimTime::ZERO,
                    timers: TimerWheel::new(),
                    tasks: FxHashMap::default(),
                    next_task: 0,
                    next_seq: 0,
                    rng: StdRng::seed_from_u64(seed),
                    trace: TraceLog::new(),
                    polls: 0,
                }),
                ready: Arc::new(ReadyQueue::default()),
            }),
        }
    }

    /// Returns a cloneable handle for use inside tasks.
    pub fn handle(&self) -> SimHandle {
        let weak: Weak<DetCore> = Arc::downgrade(&self.core);
        SimHandle::from_backend(weak)
    }

    /// Spawns a task and returns a handle to its eventual output.
    ///
    /// The `name` is used in deadlock reports and traces.
    pub fn spawn<T: Send + 'static>(
        &self,
        name: impl Into<String>,
        future: impl Future<Output = T> + Send + 'static,
    ) -> JoinHandle<T> {
        self.handle().spawn(name, future)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.state.lock().now
    }

    /// Number of task polls performed so far.
    pub fn poll_count(&self) -> u64 {
        self.core.state.lock().polls
    }

    /// Takes the accumulated trace events, leaving the log empty.
    pub fn take_trace(&self) -> TraceLog {
        std::mem::take(&mut self.core.state.lock().trace)
    }

    /// Runs until every task completes or no further progress is possible.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until_time(SimTime::MAX)
    }

    /// Runs until quiescence, deadlock, or the clock reaching `limit`
    /// (whichever comes first). Timers beyond `limit` are left pending.
    pub fn run_until_time(&mut self, limit: SimTime) -> RunOutcome {
        // One waker buffer for the whole run: `pop_batch_into` refills
        // it in place, so advancing time allocates nothing.
        let mut wakers = Vec::new();
        loop {
            // Drain the ready queue in FIFO order.
            while let Some(id) = self.core.ready.pop() {
                self.poll_task(id);
            }
            // Advance virtual time to the next deadline, taking *every*
            // timer that shares it in one batch pop (one wheel operation
            // per simulated instant instead of one heap pop per timer).
            let fired = {
                let mut st = self.core.state.lock();
                match st.timers.pop_batch_into(limit, &mut wakers) {
                    Some(deadline) => {
                        debug_assert!(deadline >= st.now, "timer in the past");
                        st.now = deadline.max(st.now);
                        true
                    }
                    None => false,
                }
            };
            if !fired {
                break;
            }
            // Wake each timer and drain the ready queue before the
            // next waker fires — the exact interleaving of the old
            // pop-per-timer loop. Nothing can join this batch
            // mid-drain: `Sleep` never registers a timer at
            // `deadline == now`.
            for waker in wakers.drain(..) {
                waker.wake();
                while let Some(id) = self.core.ready.pop() {
                    self.poll_task(id);
                }
            }
        }
        let st = self.core.state.lock();
        if st.tasks.is_empty() || !st.timers.is_empty() {
            // All done, or stopped by the time limit with timers pending.
            RunOutcome::Quiescent { time: st.now }
        } else {
            let mut stuck: Vec<String> = st
                .tasks
                .values()
                .filter(|t| !t.idle.as_ref().is_some_and(IdleToken::is_idle))
                .map(|t| t.name.clone())
                .collect();
            stuck.sort();
            if stuck.is_empty() {
                // Only parked service tasks remain: quiescent.
                RunOutcome::Quiescent { time: st.now }
            } else {
                RunOutcome::Deadlock {
                    time: st.now,
                    stuck_tasks: stuck,
                }
            }
        }
    }

    /// Runs the simulation and panics with the stuck-task list if it
    /// deadlocks. Convenient in tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks.
    pub fn run_to_quiescence(&mut self) -> SimTime {
        match self.run() {
            RunOutcome::Quiescent { time } => time,
            RunOutcome::Deadlock { time, stuck_tasks } => {
                panic!("simulation deadlocked at {time} with stuck tasks: {stuck_tasks:?}")
            }
        }
    }

    fn poll_task(&mut self, id: TaskId) {
        // Remove the task so the state lock is released while polling;
        // the polled future may spawn tasks or register timers.
        let entry = self.core.state.lock().tasks.remove(&id);
        let Some(mut entry) = entry else {
            return; // already completed; stale wake
        };
        self.core.state.lock().polls += 1;
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.core.ready),
        }));
        let mut cx = Context::from_waker(&waker);
        match entry.future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {}
            Poll::Pending => {
                self.core.state.lock().tasks.insert(id, entry);
            }
        }
    }
}

impl ExecutorRef for Sim {
    fn executor_handle(&self) -> SimHandle {
        self.handle()
    }
}

#[cfg(test)]
mod tests {
    use super::super::join_all;
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn empty_sim_is_quiescent_at_zero() {
        let mut sim = Sim::new(0);
        let outcome = sim.run();
        assert_eq!(
            outcome,
            RunOutcome::Quiescent {
                time: SimTime::ZERO
            }
        );
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        sim.spawn("sleeper", async move {
            h.sleep(SimDuration::from_millis(5)).await;
        });
        let t = sim.run_to_quiescence();
        assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(5));
    }

    #[test]
    fn sleeps_compose_sequentially() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let jh = sim.spawn("seq", async move {
            h.sleep(SimDuration::from_micros(3)).await;
            let mid = h.now();
            h.sleep(SimDuration::from_micros(4)).await;
            (mid, h.now())
        });
        sim.run_to_quiescence();
        let (mid, end) = jh.try_take().unwrap();
        assert_eq!(mid.as_nanos(), 3_000);
        assert_eq!(end.as_nanos(), 7_000);
    }

    #[test]
    fn concurrent_tasks_interleave_by_deadline() {
        let mut sim = Sim::new(0);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, delay) in [("b", 20u64), ("a", 10), ("c", 30)] {
            let h = sim.handle();
            let order = Arc::clone(&order);
            sim.spawn(name, async move {
                h.sleep(SimDuration::from_micros(delay)).await;
                order.lock().push(name);
            });
        }
        sim.run_to_quiescence();
        assert_eq!(*order.lock(), vec!["a", "b", "c"]);
    }

    #[test]
    fn join_handle_returns_output() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let inner = sim.spawn("inner", async move {
            h.sleep(SimDuration::from_micros(1)).await;
            41
        });
        let outer = sim.spawn("outer", async move { inner.await + 1 });
        sim.run_to_quiescence();
        assert_eq!(outer.try_take(), Some(42));
    }

    #[test]
    fn deadlock_is_detected_and_reports_task_names() {
        let mut sim = Sim::new(0);
        let (_tx, mut rx) = crate::channel::channel::<u32>();
        sim.spawn("waiter", async move {
            // _tx is never used to send and never dropped before run, so
            // this blocks forever.
            let _ = rx.recv().await;
        });
        match sim.run() {
            RunOutcome::Deadlock { stuck_tasks, .. } => {
                assert_eq!(stuck_tasks, vec!["waiter".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn abort_removes_task() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        let flag = Arc::new(Mutex::new(false));
        let flag2 = Arc::clone(&flag);
        let jh = sim.spawn("doomed", async move {
            h.sleep(SimDuration::from_secs(1)).await;
            *flag2.lock() = true;
        });
        jh.abort();
        let outcome = sim.run();
        assert!(outcome.is_quiescent());
        assert!(!*flag.lock());
        assert!(!jh.is_finished());
    }

    #[test]
    fn run_until_time_stops_early() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        sim.spawn("late", async move {
            h.sleep(SimDuration::from_secs(10)).await;
        });
        let out = sim.run_until_time(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(out.is_quiescent());
        assert_eq!(sim.now(), SimTime::ZERO);
        // Resuming without a limit finishes the task.
        assert!(sim.run().is_quiescent());
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(10));
    }

    #[test]
    fn yield_now_round_robins_ready_tasks() {
        let mut sim = Sim::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for name in ["x", "y"] {
            let h = sim.handle();
            let log = Arc::clone(&log);
            sim.spawn(name, async move {
                for i in 0..2 {
                    log.lock().push(format!("{name}{i}"));
                    h.yield_now().await;
                }
            });
        }
        sim.run_to_quiescence();
        assert_eq!(*log.lock(), vec!["x0", "y0", "x1", "y1"]);
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let draw = |seed| {
            let sim = Sim::new(seed);
            let h = sim.handle();
            (h.rng_u64(), h.rng_range(100))
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7).0, draw(8).0);
    }

    #[test]
    fn join_all_collects_in_order() {
        let mut sim = Sim::new(0);
        let mut handles = Vec::new();
        for i in 0..5u64 {
            let h = sim.handle();
            handles.push(sim.spawn(format!("t{i}"), async move {
                // Later tasks finish earlier; join_all must preserve order.
                h.sleep(SimDuration::from_micros(10 - i)).await;
                i
            }));
        }
        let joined = sim.spawn("join", async move { join_all(handles).await });
        sim.run_to_quiescence();
        assert_eq!(joined.try_take().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_duration_sleep_completes_without_time_advance() {
        let mut sim = Sim::new(0);
        let h = sim.handle();
        sim.spawn("zero", async move {
            h.sleep(SimDuration::ZERO).await;
        });
        assert_eq!(sim.run_to_quiescence(), SimTime::ZERO);
    }
}
