//! Executor backends: one spawn/timer/channel/event surface, two
//! schedulers.
//!
//! Everything in the runtime — hosts, schedulers, device models, shard
//! drivers, clients — is an async task talking to an executor through
//! [`SimHandle`]. This module abstracts that surface behind the
//! [`ExecutorBackend`] trait with two implementations:
//!
//! * [`Sim`] (the **deterministic** backend, [`deterministic`]): the
//!   original single-threaded virtual-time executor. Time advances only
//!   when every runnable task has yielded; the ready queue is FIFO;
//!   timers fire in `(deadline, registration order)`. Running the same
//!   program twice produces bit-identical traces — this is the backend
//!   every golden trace, chaos matrix and figure replays on.
//! * [`ThreadedExecutor`] (the **threaded** backend, [`threaded`]): a
//!   work-stealing thread pool with real monotonic timers behind the
//!   same timer-wheel API. `SimTime` is nanoseconds since executor
//!   start, `sleep` is a real timer, and tasks genuinely run in
//!   parallel — this is the backend that exercises the controller's
//!   locking and `Send`-safety for production, mirroring the
//!   `Deterministic`/`Production` split in zed/gpui.
//!
//! [`Executor`] is the uniform front: construct from an
//! [`ExecutorKind`] (or `PATHWAYS_EXECUTOR` via
//! [`ExecutorKind::from_env`]) and drive either backend with one API.
//! Code that only spawns and sleeps is backend-agnostic by
//! construction: `SimHandle` requires `Send` futures, so anything that
//! runs deterministically also compiles for real threads.

pub mod deterministic;
pub mod threaded;

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Waker};

use parking_lot::Mutex;

use crate::time::{SimDuration, SimTime};
use crate::trace::TraceLog;

pub use deterministic::Sim;
pub use threaded::ThreadedExecutor;

/// Identifier of a spawned task within one executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Boxed task body as stored by a backend.
pub type TaskFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Which backend an executor (or handle) is running on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded virtual time; bit-identical replay.
    Deterministic,
    /// Work-stealing thread pool on real monotonic time.
    Threaded,
}

/// Backend selection, including threaded worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// The deterministic virtual-time backend (the default).
    #[default]
    Deterministic,
    /// The work-stealing threaded backend with `workers` OS threads.
    Threaded {
        /// Worker thread count (0 = one per available core, capped at 8).
        workers: usize,
    },
}

impl ExecutorKind {
    /// Reads `PATHWAYS_EXECUTOR`: `deterministic` (default), `threaded`,
    /// or `threaded:<N>` for an explicit worker count.
    pub fn from_env() -> Self {
        match std::env::var("PATHWAYS_EXECUTOR") {
            Ok(v) => Self::parse(&v).unwrap_or_else(|| {
                panic!("PATHWAYS_EXECUTOR={v:?} (want deterministic | threaded | threaded:<N>)")
            }),
            Err(_) => ExecutorKind::Deterministic,
        }
    }

    /// Parses `deterministic` | `threaded` | `threaded:<N>`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "deterministic" | "" => Some(ExecutorKind::Deterministic),
            "threaded" => Some(ExecutorKind::Threaded { workers: 0 }),
            _ => {
                let n = s.strip_prefix("threaded:")?;
                Some(ExecutorKind::Threaded {
                    workers: n.parse().ok()?,
                })
            }
        }
    }

    /// The backend this kind selects.
    pub fn backend(&self) -> Backend {
        match self {
            ExecutorKind::Deterministic => Backend::Deterministic,
            ExecutorKind::Threaded { .. } => Backend::Threaded,
        }
    }
}

/// The spawn/timer/trace surface a backend provides to [`SimHandle`].
///
/// Object-safe: handles hold a `Weak<dyn ExecutorBackend>` so the same
/// handle type drives both backends. The generic conveniences
/// (`spawn<T>`, typed join handles) are layered on top in `SimHandle`.
pub trait ExecutorBackend: Send + Sync {
    /// Which backend this is.
    fn backend(&self) -> Backend;
    /// Current time: virtual time (deterministic) or monotonic
    /// nanoseconds since executor start (threaded).
    fn now(&self) -> SimTime;
    /// Registers a boxed task; it becomes runnable immediately.
    fn spawn_task(&self, name: String, idle: Option<IdleToken>, future: TaskFuture) -> TaskId;
    /// Forcibly removes a task (models abrupt process death).
    fn abort_task(&self, id: TaskId);
    /// Arms a timer waking `waker` at `deadline`. Timers sharing a
    /// deadline fire in registration order on the deterministic
    /// backend.
    fn register_timer(&self, deadline: SimTime, waker: Waker);
    /// Draws from the executor's seeded RNG.
    fn rng_u64(&self) -> u64;
    /// Draws uniformly from `[0, bound)` (callers guarantee `bound > 0`).
    fn rng_range(&self, bound: u64) -> u64;
    /// Runs `f` with the shared trace log.
    fn with_trace_log(&self, f: &mut dyn FnMut(&mut TraceLog));
    /// Total task polls performed (introspection/benches).
    fn poll_count(&self) -> u64;
}

/// Marker a long-running service task uses to tell the executor it is
/// parked waiting for work (as opposed to stuck mid-operation).
///
/// Quiescence detection treats a pending task whose token reads *idle*
/// as finished: an accelerator waiting for its next kernel is not a
/// deadlock, but an accelerator blocked inside a gang collective is.
#[derive(Debug, Clone, Default)]
pub struct IdleToken {
    idle: Arc<AtomicBool>,
}

impl IdleToken {
    /// Creates a token in the *busy* state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the owning task idle (parked awaiting work).
    pub fn set_idle(&self) {
        self.idle.store(true, Ordering::SeqCst);
    }

    /// Marks the owning task busy (processing an operation).
    pub fn set_busy(&self) {
        self.idle.store(false, Ordering::SeqCst);
    }

    /// Reads the current state.
    pub fn is_idle(&self) -> bool {
        self.idle.load(Ordering::SeqCst)
    }
}

/// Outcome of running an executor to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every spawned task ran to completion (or is parked idle).
    Quiescent {
        /// Time when the last event fired.
        time: SimTime,
    },
    /// Some tasks are still pending but nothing can wake them: the
    /// system is deadlocked (or waiting on an external stimulus that
    /// will never arrive). The names of the stuck tasks are reported
    /// for diagnosis.
    Deadlock {
        /// Time at which progress stopped.
        time: SimTime,
        /// Names of tasks that can never be woken again.
        stuck_tasks: Vec<String>,
    },
}

impl RunOutcome {
    /// Returns true if the run ended with all tasks completed.
    pub fn is_quiescent(&self) -> bool {
        matches!(self, RunOutcome::Quiescent { .. })
    }

    /// Returns true if the run ended in a deadlock.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, RunOutcome::Deadlock { .. })
    }

    /// Time at which the run stopped.
    pub fn time(&self) -> SimTime {
        match self {
            RunOutcome::Quiescent { time } | RunOutcome::Deadlock { time, .. } => *time,
        }
    }
}

/// Cloneable handle to an executor, usable from inside tasks.
///
/// The same handle type serves both backends; spawned futures must be
/// `Send` so they are runnable on either.
pub struct SimHandle {
    backend: Weak<dyn ExecutorBackend>,
}

impl Clone for SimHandle {
    fn clone(&self) -> Self {
        SimHandle {
            backend: Weak::clone(&self.backend),
        }
    }
}

impl fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimHandle")
            .field("now", &self.now())
            .finish()
    }
}

impl SimHandle {
    pub(crate) fn from_backend(backend: Weak<dyn ExecutorBackend>) -> Self {
        SimHandle { backend }
    }

    fn upgrade(&self) -> Arc<dyn ExecutorBackend> {
        self.backend
            .upgrade()
            .expect("SimHandle used after its executor was dropped")
    }

    /// Which backend this handle belongs to.
    pub fn backend(&self) -> Backend {
        self.upgrade().backend()
    }

    /// Current time (virtual or monotonic-since-start).
    ///
    /// # Panics
    ///
    /// Panics if the owning executor has been dropped.
    pub fn now(&self) -> SimTime {
        self.upgrade().now()
    }

    /// Returns a future that resolves after `duration`.
    pub fn sleep(&self, duration: SimDuration) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline: None,
            duration,
        }
    }

    /// Returns a future that resolves at the given instant (immediately
    /// if `deadline` is in the past).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline: Some(deadline),
            duration: SimDuration::ZERO,
        }
    }

    /// Yields to other ready tasks once.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Spawns a task onto the executor.
    pub fn spawn<T: Send + 'static>(
        &self,
        name: impl Into<String>,
        future: impl Future<Output = T> + Send + 'static,
    ) -> JoinHandle<T> {
        self.spawn_inner(name, None, future)
    }

    /// Spawns a long-running service task carrying an [`IdleToken`].
    ///
    /// Clone the token into the future and call
    /// [`IdleToken::set_idle`]/[`IdleToken::set_busy`] around its
    /// wait-for-work point; an idle service task does not count as a
    /// deadlock when the rest of the system drains.
    pub fn spawn_service<T: Send + 'static>(
        &self,
        name: impl Into<String>,
        token: &IdleToken,
        future: impl Future<Output = T> + Send + 'static,
    ) -> JoinHandle<T> {
        self.spawn_inner(name, Some(token.clone()), future)
    }

    fn spawn_inner<T: Send + 'static>(
        &self,
        name: impl Into<String>,
        idle: Option<IdleToken>,
        future: impl Future<Output = T> + Send + 'static,
    ) -> JoinHandle<T> {
        let state = Arc::new(Mutex::new(JoinState {
            result: None,
            waker: None,
            finished: false,
        }));
        let state2 = Arc::clone(&state);
        let wrapped = async move {
            let out = future.await;
            let waker = {
                let mut st = state2.lock();
                st.result = Some(out);
                st.finished = true;
                st.waker.take()
            };
            if let Some(w) = waker {
                w.wake();
            }
        };
        let backend = self.upgrade();
        let id = backend.spawn_task(name.into(), idle, Box::pin(wrapped));
        JoinHandle {
            state,
            id,
            backend: Weak::clone(&self.backend),
        }
    }

    /// Draws a uniformly random `u64` from the executor's seeded RNG.
    pub fn rng_u64(&self) -> u64 {
        self.upgrade().rng_u64()
    }

    /// Draws a uniformly random value in `[0, bound)` from the seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn rng_range(&self, bound: u64) -> u64 {
        assert!(bound > 0, "rng_range bound must be positive");
        self.upgrade().rng_range(bound)
    }

    /// Records a span on the shared trace log.
    pub fn trace_span(
        &self,
        track: impl Into<String>,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        let (track, label) = (track.into(), label.into());
        self.with_trace(move |t| t.record(track, label, start, end));
    }

    /// Runs `f` with mutable access to the trace log.
    pub fn with_trace<R>(&self, f: impl FnOnce(&mut TraceLog) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.upgrade().with_trace_log(&mut |trace| {
            if let Some(f) = f.take() {
                out = Some(f(trace));
            }
        });
        out.expect("with_trace_log must invoke the callback")
    }

    pub(crate) fn register_timer(&self, deadline: SimTime, waker: Waker) {
        self.upgrade().register_timer(deadline, waker);
    }
}

/// Future returned by [`SimHandle::sleep`].
#[derive(Debug)]
pub struct Sleep {
    handle: SimHandle,
    deadline: Option<SimTime>,
    duration: SimDuration,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let now = self.handle.now();
        match self.deadline {
            None => {
                // First poll: register the timer.
                let deadline = now + self.duration;
                self.deadline = Some(deadline);
                if deadline <= now {
                    return Poll::Ready(());
                }
                self.handle.register_timer(deadline, cx.waker().clone());
                Poll::Pending
            }
            Some(deadline) => {
                if now >= deadline {
                    Poll::Ready(())
                } else {
                    self.handle.register_timer(deadline, cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

/// Future returned by [`SimHandle::yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Handle to the output of a spawned task.
///
/// Awaiting the handle yields the task's output. Dropping it detaches
/// the task (the task keeps running).
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
    id: TaskId,
    backend: Weak<dyn ExecutorBackend>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("task", &self.id)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// Returns true if the task has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.lock().finished
    }

    /// Takes the output if the task has completed and the output has
    /// not been taken yet.
    pub fn try_take(&self) -> Option<T> {
        self.state.lock().result.take()
    }

    /// Forcibly removes the task from the executor.
    ///
    /// Used to model abrupt client/program failure: the task simply
    /// never runs again, exactly like a process that was killed. Safe
    /// to call on completed tasks (it is then a no-op).
    pub fn abort(&self) {
        if let Some(backend) = self.backend.upgrade() {
            backend.abort_task(self.id);
        }
    }

    /// The id of the underlying task.
    pub fn id(&self) -> TaskId {
        self.id
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.lock();
        if let Some(v) = st.result.take() {
            Poll::Ready(v)
        } else if st.finished {
            panic!("JoinHandle polled after output was taken");
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Awaits every handle in `handles`, returning outputs in order.
///
/// Concurrency comes from the tasks themselves (they were already
/// spawned); this helper merely collects their results.
pub async fn join_all<T>(handles: Vec<JoinHandle<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

/// Anything that can hand out a [`SimHandle`]: both executors, the
/// [`Executor`] front, and `SimHandle` itself. Lets runtime
/// constructors accept any of them.
pub trait ExecutorRef {
    /// A handle onto the underlying executor.
    fn executor_handle(&self) -> SimHandle;
}

impl ExecutorRef for SimHandle {
    fn executor_handle(&self) -> SimHandle {
        self.clone()
    }
}

impl<E: ExecutorRef + ?Sized> ExecutorRef for &E {
    fn executor_handle(&self) -> SimHandle {
        (**self).executor_handle()
    }
}

/// Uniform front over the two backends.
///
/// ```
/// use pathways_sim::{Executor, ExecutorKind, SimDuration};
///
/// for kind in [ExecutorKind::Deterministic, ExecutorKind::Threaded { workers: 2 }] {
///     let mut ex = Executor::new(kind, 42);
///     let h = ex.handle();
///     let task = ex.spawn("worker", async move {
///         h.sleep(SimDuration::from_micros(10)).await;
///         2 + 2
///     });
///     assert!(ex.run().is_quiescent());
///     assert_eq!(task.try_take(), Some(4));
/// }
/// ```
#[derive(Debug)]
pub enum Executor {
    /// Deterministic virtual-time backend.
    Deterministic(Sim),
    /// Work-stealing threaded backend.
    Threaded(ThreadedExecutor),
}

impl Executor {
    /// Creates an executor of the given kind; `seed` seeds its RNG.
    pub fn new(kind: ExecutorKind, seed: u64) -> Self {
        match kind {
            ExecutorKind::Deterministic => Executor::Deterministic(Sim::new(seed)),
            ExecutorKind::Threaded { workers } => {
                Executor::Threaded(ThreadedExecutor::new(workers, seed))
            }
        }
    }

    /// Creates an executor per `PATHWAYS_EXECUTOR` (see
    /// [`ExecutorKind::from_env`]).
    pub fn from_env(seed: u64) -> Self {
        Self::new(ExecutorKind::from_env(), seed)
    }

    /// Which backend is running.
    pub fn backend(&self) -> Backend {
        match self {
            Executor::Deterministic(_) => Backend::Deterministic,
            Executor::Threaded(_) => Backend::Threaded,
        }
    }

    /// True for the deterministic backend (use to gate bit-identical
    /// replay assertions; the threaded backend asserts invariants only).
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Executor::Deterministic(_))
    }

    /// A cloneable handle for use inside tasks.
    pub fn handle(&self) -> SimHandle {
        match self {
            Executor::Deterministic(s) => s.handle(),
            Executor::Threaded(t) => t.handle(),
        }
    }

    /// Spawns a task and returns a handle to its eventual output.
    pub fn spawn<T: Send + 'static>(
        &self,
        name: impl Into<String>,
        future: impl Future<Output = T> + Send + 'static,
    ) -> JoinHandle<T> {
        self.handle().spawn(name, future)
    }

    /// Runs until every task completes (or is parked idle) or no
    /// further progress is possible.
    pub fn run(&mut self) -> RunOutcome {
        match self {
            Executor::Deterministic(s) => s.run(),
            Executor::Threaded(t) => t.run(),
        }
    }

    /// Runs and panics with the stuck-task list on deadlock.
    ///
    /// # Panics
    ///
    /// Panics if the run deadlocks.
    pub fn run_to_quiescence(&mut self) -> SimTime {
        match self {
            Executor::Deterministic(s) => s.run_to_quiescence(),
            Executor::Threaded(t) => t.run_to_quiescence(),
        }
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        match self {
            Executor::Deterministic(s) => s.now(),
            Executor::Threaded(t) => t.now(),
        }
    }

    /// Takes the accumulated trace events, leaving the log empty.
    pub fn take_trace(&self) -> TraceLog {
        match self {
            Executor::Deterministic(s) => s.take_trace(),
            Executor::Threaded(t) => t.take_trace(),
        }
    }
}

impl ExecutorRef for Executor {
    fn executor_handle(&self) -> SimHandle {
        self.handle()
    }
}
