//! Interior mutability for runtime state, on both executor backends.
//!
//! [`Lock`] is the workspace's one sanctioned interior-mutability
//! primitive outside the executor itself (the pathlint `raw-thread`
//! rule bans direct `std::sync::Mutex`/`RwLock`/`Condvar` elsewhere).
//! It is a mutex with two additions tuned for this codebase:
//!
//! * **Re-entrancy detection.** The deterministic backend runs every
//!   task on one thread, where a re-entrant `lock()` would silently
//!   deadlock (the `RefCell` it replaced would have panicked). `Lock`
//!   tracks the owning thread and panics with the lock's name instead
//!   of deadlocking, preserving the fail-fast behavior golden tests
//!   rely on.
//! * **Contention profiling.** Locks created with [`Lock::named`]
//!   register themselves in a process-wide table; every acquisition
//!   and every contended acquisition (the fast-path `try_lock` lost)
//!   is counted. [`contention_profile`] snapshots the table — this is
//!   what `fig_dispatch`'s lock-contention profile reports.
//!
//! Counting is skipped entirely for anonymous locks, so fine-grained
//! per-object state pays only the owner-tracking store.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

/// Monotonic per-thread id used for re-entrancy detection (0 = no owner).
fn current_thread_token() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: Cell<u64> = const { Cell::new(0) };
    }
    TOKEN.with(|t| {
        let mut v = t.get();
        if v == 0 {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(v);
        }
        v
    })
}

/// Acquisition counters of one named [`Lock`] (or one name shared by
/// several locks — the profile aggregates by name).
#[derive(Debug)]
pub struct LockStats {
    name: &'static str,
    acquires: AtomicU64,
    contended: AtomicU64,
}

/// Process-wide registry of named-lock stats.
fn registry() -> &'static Mutex<Vec<Arc<LockStats>>> {
    static REGISTRY: std::sync::OnceLock<Mutex<Vec<Arc<LockStats>>>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// One row of [`contention_profile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockProfile {
    /// The name given to [`Lock::named`].
    pub name: String,
    /// Total acquisitions since the last [`reset_contention_profile`].
    pub acquires: u64,
    /// Acquisitions that lost the uncontended fast path and blocked.
    pub contended: u64,
}

/// Snapshot of every named lock's counters, aggregated by name and
/// sorted by contended count (most contended first).
pub fn contention_profile() -> Vec<LockProfile> {
    let mut by_name: std::collections::BTreeMap<&'static str, (u64, u64)> =
        std::collections::BTreeMap::new();
    for s in registry().lock().iter() {
        let e = by_name.entry(s.name).or_insert((0, 0));
        e.0 += s.acquires.load(Ordering::Relaxed);
        e.1 += s.contended.load(Ordering::Relaxed);
    }
    let mut out: Vec<LockProfile> = by_name
        .into_iter()
        .map(|(name, (acquires, contended))| LockProfile {
            name: name.to_string(),
            acquires,
            contended,
        })
        .collect();
    out.sort_by(|a, b| b.contended.cmp(&a.contended).then(a.name.cmp(&b.name)));
    out
}

/// Zeroes every named lock's counters (the locks stay registered).
pub fn reset_contention_profile() {
    for s in registry().lock().iter() {
        s.acquires.store(0, Ordering::Relaxed);
        s.contended.store(0, Ordering::Relaxed);
    }
}

/// A mutex with re-entrancy detection and optional contention counting.
///
/// Replaces the `RefCell`s the runtime used when it was single-threaded
/// only: semantics under the deterministic backend are identical
/// (including panicking on re-entrant acquisition, where a plain mutex
/// would deadlock), and under the threaded backend it is an ordinary
/// blocking mutex.
#[derive(Default)]
pub struct Lock<T: ?Sized> {
    stats: Option<Arc<LockStats>>,
    /// Thread token of the current owner (0 when unlocked). Written
    /// only by the owner, read by would-be acquirers for re-entrancy
    /// diagnosis.
    owner: AtomicU64,
    inner: Mutex<T>,
}

impl<T> Lock<T> {
    /// Creates an anonymous lock (no contention counting).
    pub fn new(value: T) -> Self {
        Lock {
            stats: None,
            owner: AtomicU64::new(0),
            inner: Mutex::new(value),
        }
    }

    /// Creates a named lock registered in the contention profile.
    ///
    /// Use for the runtime's shared hot structures (store, scheduler
    /// state, fabric) so `fig_dispatch` can report where the threaded
    /// backend contends.
    pub fn named(name: &'static str, value: T) -> Self {
        let stats = Arc::new(LockStats {
            name,
            acquires: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        });
        registry().lock().push(Arc::clone(&stats));
        Lock {
            stats: Some(stats),
            owner: AtomicU64::new(0),
            inner: Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Clone> Clone for Lock<T> {
    /// Clones the current value into a fresh, anonymous, unlocked lock.
    fn clone(&self) -> Self {
        Lock::new(self.lock().clone())
    }
}

impl<T: ?Sized> Lock<T> {
    /// Acquires the lock.
    ///
    /// # Panics
    ///
    /// Panics (instead of deadlocking) if the calling thread already
    /// holds this lock — the moral equivalent of `RefCell`'s
    /// borrow-while-borrowed panic.
    pub fn lock(&self) -> LockGuard<'_, T> {
        let me = current_thread_token();
        let guard = match self.inner.try_lock() {
            Some(g) => g,
            None => {
                if self.owner.load(Ordering::Relaxed) == me {
                    panic!(
                        "re-entrant Lock::lock on {:?} (would deadlock; the RefCell this \
                         replaced would have panicked here too)",
                        self.stats.as_ref().map_or("<anonymous>", |s| s.name)
                    );
                }
                if let Some(s) = &self.stats {
                    s.contended.fetch_add(1, Ordering::Relaxed);
                }
                self.inner.lock()
            }
        };
        if let Some(s) = &self.stats {
            s.acquires.fetch_add(1, Ordering::Relaxed);
        }
        self.owner.store(me, Ordering::Relaxed);
        LockGuard {
            lock: self,
            guard: ManuallyDrop::new(guard),
        }
    }

    /// Attempts to acquire without blocking.
    pub fn try_lock(&self) -> Option<LockGuard<'_, T>> {
        let g = self.inner.try_lock()?;
        if let Some(s) = &self.stats {
            s.acquires.fetch_add(1, Ordering::Relaxed);
        }
        self.owner.store(current_thread_token(), Ordering::Relaxed);
        Some(LockGuard {
            lock: self,
            guard: ManuallyDrop::new(g),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Lock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Lock").field(&&*g).finish(),
            None => f.write_str("Lock(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Lock::lock`].
pub struct LockGuard<'a, T: ?Sized> {
    lock: &'a Lock<T>,
    guard: ManuallyDrop<MutexGuard<'a, T>>,
}

impl<T: ?Sized> Drop for LockGuard<'_, T> {
    fn drop(&mut self) {
        // Clear ownership before releasing: between the store and the
        // unlock other threads merely see "locked by nobody" and block
        // normally.
        self.lock.owner.store(0, Ordering::Relaxed);
        // SAFETY: dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.guard) };
    }
}

impl<T: ?Sized> Deref for LockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for LockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for LockGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_exclusive_access() {
        let l = Lock::new(1u32);
        {
            let mut g = l.lock();
            *g += 1;
            assert!(l.try_lock().is_none());
        }
        assert_eq!(*l.lock(), 2);
    }

    #[test]
    #[should_panic(expected = "re-entrant")]
    fn reentrant_lock_panics_not_deadlocks() {
        let l = Lock::named("reentry-test", ());
        let _g = l.lock();
        let _g2 = l.lock();
    }

    #[test]
    fn named_locks_count_acquisitions() {
        let l = Lock::named("count-test", 0u32);
        let before = contention_profile()
            .into_iter()
            .find(|p| p.name == "count-test")
            .map_or(0, |p| p.acquires);
        *l.lock() += 1;
        *l.lock() += 1;
        let after = contention_profile()
            .into_iter()
            .find(|p| p.name == "count-test")
            .unwrap();
        assert_eq!(after.acquires - before, 2);
    }

    #[test]
    fn contended_acquisition_is_counted() {
        let l = std::sync::Arc::new(Lock::named("contend-test", ()));
        let l2 = std::sync::Arc::clone(&l);
        let g = l.lock();
        let t = std::thread::spawn(move || {
            let _g = l2.lock();
        });
        // Give the spawned thread time to lose the fast path.
        while contention_profile()
            .iter()
            .find(|p| p.name == "contend-test")
            .map_or(0, |p| p.contended)
            == 0
        {
            std::thread::yield_now();
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn get_mut_and_into_inner() {
        let mut l = Lock::new(5u32);
        *l.get_mut() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}
