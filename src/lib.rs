//! # pathways
//!
//! A from-scratch Rust reproduction of **Pathways: Asynchronous
//! Distributed Dataflow for ML** (Barham et al., MLSys 2022): a
//! single-controller, gang-scheduled, asynchronously-dispatched runtime
//! for ML accelerators, together with every substrate it depends on and
//! the baselines it is evaluated against — all running on a
//! deterministic virtual-time simulation of a TPU-like cluster.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sim`] — deterministic virtual-time async executor;
//! * [`net`] — cluster topology and PCIe/ICI/DCN interconnect models;
//! * [`device`] — simulated accelerators (in-order non-preemptible
//!   queues, HBM, gang collectives);
//! * [`plaque`] — the sharded-dataflow coordination substrate;
//! * [`core`] — the Pathways runtime itself (resource manager, client,
//!   schedulers, executors, object store);
//! * [`baselines`] — JAX-like, TF1-like and Ray-like comparators;
//! * [`models`] — Transformer workloads and cost models.
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries regenerating every table
//! and figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use pathways::core::{FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
//! use pathways::net::{ClusterSpec, HostId, NetworkParams};
//! use pathways::sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(0);
//! let rt = PathwaysRuntime::new(
//!     &sim,
//!     ClusterSpec::config_b(2),
//!     NetworkParams::tpu_cluster(),
//!     PathwaysConfig::default(),
//! );
//! let client = rt.client(HostId(0));
//! let slice = client.virtual_slice(SliceRequest::devices(16))?;
//! let mut b = client.trace("train");
//! b.computation(
//!     FnSpec::compute_only("step", SimDuration::from_millis(1)).with_allreduce(4),
//!     &slice,
//! );
//! let program = b.build()?;
//! let prepared = client.prepare(&program);
//! let job = sim.spawn("client", async move { client.run(&prepared).await });
//! sim.run_to_quiescence();
//! assert!(job.is_finished());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use pathways_baselines as baselines;
pub use pathways_core as core;
pub use pathways_device as device;
pub use pathways_models as models;
pub use pathways_net as net;
pub use pathways_plaque as plaque;
pub use pathways_sim as sim;
