//! Property-based tests across the whole stack: arbitrary program DAGs
//! on arbitrary small clusters complete, conserve memory, and stay
//! deterministic.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pathways::core::{FnSpec, PathwaysConfig, PathwaysRuntime, SchedPolicy, SliceRequest};
use pathways::net::{ClientId, ClusterSpec, HostId, NetworkParams};
use pathways::sim::{Sim, SimDuration};

/// Generates a random layered DAG description: per layer, a shard count
/// selector and compute time; consecutive layers are connected.
fn layered_program() -> impl Strategy<Value = Vec<(u8, u16, bool)>> {
    // (slice size selector, compute us, reshard edge?)
    proptest::collection::vec((1u8..4, 1u16..500, any::<bool>()), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any layered program over any small cluster runs to completion —
    /// no deadlocks from scheduling, dispatch, transfers or progress
    /// tracking — and the object store is empty after results drop.
    #[test]
    fn arbitrary_layered_programs_complete(
        hosts in 1u32..5,
        layers in layered_program(),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(hosts),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        let client = rt.client(HostId(0));
        let n_devices = hosts * 8;
        let mut b = client.trace("prop");
        let mut prev = None;
        for (sel, us, reshard) in &layers {
            let devs = (n_devices / *sel as u32).max(1);
            let slice = client.virtual_slice(SliceRequest::devices(devs)).unwrap();
            let comp = b.computation(
                FnSpec::compute_only("l", SimDuration::from_micros(*us as u64))
                    .with_output_bytes(1 << 12),
                &slice,
            );
            if let Some(p) = prev {
                // One-to-one edges require equal shard counts; fall back
                // to resharding otherwise.
                if *reshard {
                    b.reshard_edge(p, comp, 1 << 12);
                } else {
                    b.reshard_edge(p, comp, 1 << 10);
                }
            }
            prev = Some(comp);
        }
        let program = b.build().unwrap();
        let prepared = client.prepare(&program);
        // Compact representation: plaque nodes = comps + Result.
        let (nodes, _) = prepared.graph_size();
        prop_assert_eq!(nodes, layers.len() + 1);
        let core = std::sync::Arc::clone(rt.core());
        let job = sim.spawn("client", async move {
            let r = client.run(&prepared).await;
            r.objects().len()
        });
        let outcome = sim.run();
        prop_assert!(outcome.is_quiescent(), "deadlock: {:?}", outcome);
        prop_assert_eq!(job.try_take(), Some(1));
        // All HBM returned once results dropped.
        prop_assert!(core.store.is_empty(), "store leaked {} objects", core.store.len());
    }

    /// The paper's deadlock-freedom invariant (§4.4): because every
    /// device executor receives its grants from the single island
    /// scheduler, gang collectives are enqueued in the same relative
    /// order on *every* device of the island — regardless of which
    /// policy engine chose that order. Violating this is exactly the
    /// inconsistent-enqueue deadlock of §2.
    #[test]
    fn gang_grant_order_identical_across_island_devices(
        policy_sel in 0u8..4,
        n_clients in 2u32..5,
        cost_us in 50u64..500,
        seed in any::<u64>(),
    ) {
        let weights: BTreeMap<ClientId, u32> = (0..n_clients)
            .map(|c| (ClientId(c), 1 << c.min(3)))
            .collect();
        let policy = match policy_sel {
            0 => SchedPolicy::Fifo,
            1 => SchedPolicy::ProportionalShare(weights),
            2 => SchedPolicy::Priority(weights),
            _ => SchedPolicy::WeightedFair {
                weights,
                quantum: SimDuration::from_micros(500),
            },
        };
        let mut sim = Sim::new(seed);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::single_island(1, 8),
            NetworkParams::tpu_cluster(),
            PathwaysConfig {
                policy,
                sched_horizon: SimDuration::from_micros(600),
                ..PathwaysConfig::default()
            },
        );
        let labels = ["A", "B", "C", "D"];
        for c in 0..n_clients {
            let client = rt.client_labeled(HostId(0), labels[c as usize]);
            // Every program gangs all 8 devices of the island.
            let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
            let mut b = client.trace(format!("p{c}"));
            b.computation(
                FnSpec::compute_only("step", SimDuration::from_micros(cost_us))
                    .with_allreduce(4),
                &slice,
            );
            let program = b.build().unwrap();
            let prepared = client.prepare(&program);
            sim.spawn(format!("client{c}"), async move {
                // A few outstanding at once so the scheduler is
                // contended and the policy actually reorders.
                let mut outstanding = Vec::new();
                for _ in 0..3 {
                    outstanding.push(Box::pin(client.run(&prepared)));
                }
                for _ in 0..6 {
                    let done = outstanding.remove(0);
                    done.await;
                    outstanding.push(Box::pin(client.run(&prepared)));
                }
                for f in outstanding {
                    f.await;
                }
            });
        }
        let outcome = sim.run();
        prop_assert!(outcome.is_quiescent(), "deadlock: {:?}", outcome);
        let trace = sim.take_trace();
        // Per-device sequence of client labels must be identical on all
        // devices of the island.
        let order_of = |d: u32| -> Vec<String> {
            trace
                .track(&format!("d{d:04}"))
                .iter()
                .map(|s| s.label.clone())
                .collect()
        };
        let reference = order_of(0);
        prop_assert!(
            reference.len() >= (n_clients * 9) as usize,
            "device 0 saw only {} kernels",
            reference.len()
        );
        for d in 1..8 {
            prop_assert_eq!(
                &reference,
                &order_of(d),
                "device {} disagrees with device 0 on gang order",
                d
            );
        }
    }

    /// Throughput of a single-computation program is monotonically
    /// non-increasing in computation size (sanity of the whole timing
    /// stack).
    #[test]
    fn longer_computations_never_run_faster(
        a_us in 10u64..3_000,
        b_us in 10u64..3_000,
    ) {
        let measure = |us: u64| {
            let mut sim = Sim::new(0);
            let rt = PathwaysRuntime::new(
                &sim,
                ClusterSpec::config_b(1),
                NetworkParams::tpu_cluster(),
                PathwaysConfig::default(),
            );
            let client = rt.client(HostId(0));
            let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
            let mut b = client.trace("m");
            b.computation(
                FnSpec::compute_only("f", SimDuration::from_micros(us)).with_allreduce(4),
                &slice,
            );
            let program = b.build().unwrap();
            let prepared = client.prepare(&program);
            let h = sim.handle();
            let job = sim.spawn("c", async move {
                let start = h.now();
                for _ in 0..5 {
                    client.run(&prepared).await;
                }
                h.now().duration_since(start).as_nanos()
            });
            sim.run_to_quiescence();
            job.try_take().unwrap()
        };
        let (lo, hi) = if a_us <= b_us { (a_us, b_us) } else { (b_us, a_us) };
        prop_assert!(measure(lo) <= measure(hi));
    }
}
