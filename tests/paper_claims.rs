//! Cross-crate integration tests asserting the paper's central claims
//! hold in this reproduction, through the public facade API.

use pathways::baselines::{StepWorkload, SubmissionMode};
use pathways::core::{DispatchMode, FnSpec, PathwaysConfig, PathwaysRuntime, SliceRequest};
use pathways::net::{ClusterSpec, HostId, NetworkParams};
use pathways::sim::{Sim, SimDuration};

/// §2: without a centralized scheduler, inconsistently-ordered gang
/// collectives deadlock the devices; with the Pathways scheduler the
/// same workload completes. Both halves demonstrated on the same
/// simulated hardware.
#[test]
fn gang_scheduling_prevents_the_deadlock_it_claims_to() {
    use pathways::device::{
        CollectiveOp, CollectiveRendezvous, DeviceConfig, DeviceHandle, GangTag, Kernel,
    };
    use pathways::net::{CollectiveKind, DeviceId};

    // Without: two programs enqueue collectives in opposite orders.
    let mut sim = Sim::new(0);
    let rz = CollectiveRendezvous::new(sim.handle());
    let d0 = DeviceHandle::spawn(
        &sim.handle(),
        DeviceId(0),
        rz.clone(),
        DeviceConfig::default(),
    );
    let d1 = DeviceHandle::spawn(&sim.handle(), DeviceId(1), rz, DeviceConfig::default());
    let coll = |tag| CollectiveOp {
        kind: CollectiveKind::AllReduce,
        tag: GangTag(tag),
        participants: 2,
        duration: SimDuration::ZERO,
        devices: vec![],
    };
    let k = |tag| Kernel::compute("c", SimDuration::ZERO).with_collective(coll(tag));
    drop(d0.enqueue_simple(k(1), "p1"));
    drop(d0.enqueue_simple(k(2), "p2"));
    drop(d1.enqueue_simple(k(2), "p2"));
    drop(d1.enqueue_simple(k(1), "p1"));
    drop((d0, d1));
    assert!(sim.run().is_deadlock(), "inconsistent order must deadlock");

    // With: many concurrent clients over the full runtime.
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(2),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    for c in 0..8 {
        let client = rt.client(HostId(c % 2));
        let slice = client.virtual_slice(SliceRequest::devices(16)).unwrap();
        let mut b = client.trace(format!("p{c}"));
        b.computation(
            FnSpec::compute_only("step", SimDuration::from_micros(50)).with_allreduce(4),
            &slice,
        );
        let program = b.build().unwrap();
        let prepared = client.prepare(&program);
        sim.spawn(format!("client{c}"), async move {
            for _ in 0..5 {
                client.run(&prepared).await;
            }
        });
    }
    assert!(
        sim.run().is_quiescent(),
        "gang scheduling must prevent deadlock"
    );
}

/// §5.1/Figure 5: Pathways matches multi-controller JAX once enough
/// work is fused per node, but loses OpByOp.
#[test]
fn dispatch_overhead_relations_hold() {
    use pathways_bench::micro::{jax_throughput, pathways_throughput};
    let w = StepWorkload::trivial();
    let jax_f = jax_throughput(2, 8, SubmissionMode::Fused, w, 256).per_sec();
    let pw_f = pathways_throughput(2, 8, SubmissionMode::Fused, w, 256).per_sec();
    let jax_o = jax_throughput(2, 8, SubmissionMode::OpByOp, w, 128).per_sec();
    let pw_o = pathways_throughput(2, 8, SubmissionMode::OpByOp, w, 128).per_sec();
    assert!(pw_f / jax_f > 0.85, "PW-F {pw_f:.0} vs JAX-F {jax_f:.0}");
    assert!(jax_o > pw_o, "JAX-O {jax_o:.0} must beat PW-O {pw_o:.0}");
}

/// §4.5/Figure 7: parallel asynchronous dispatch beats the sequential
/// fallback on host-bound pipelines.
#[test]
fn parallel_dispatch_claim_holds() {
    use pathways_bench::pipeline::pipeline_throughput;
    let par = pipeline_throughput(16, DispatchMode::Parallel, SimDuration::from_micros(10), 4);
    let seq = pipeline_throughput(
        16,
        DispatchMode::Sequential,
        SimDuration::from_micros(10),
        4,
    );
    assert!(
        par > seq * 1.3,
        "parallel {par:.0}/s vs sequential {seq:.0}/s"
    );
}

/// §5.3/Table 1: identical model, identical throughput on both systems.
#[test]
fn table1_parity_holds() {
    use pathways::models::TransformerConfig;
    use pathways_bench::training::table1_point;
    let (jax, pw) = table1_point(TransformerConfig::t5_base(), 32, 0.65, 2);
    let ratio = pw / jax;
    assert!((0.95..1.05).contains(&ratio), "ratio {ratio:.3}");
}

/// The entire distributed system is deterministic: two identical runs
/// produce byte-identical device traces.
#[test]
fn full_system_determinism() {
    let run_once = || {
        let mut sim = Sim::new(123);
        let rt = PathwaysRuntime::new(
            &sim,
            ClusterSpec::config_b(2),
            NetworkParams::tpu_cluster(),
            PathwaysConfig::default(),
        );
        for c in 0..3 {
            let client = rt.client(HostId(c % 2));
            let slice = client.virtual_slice(SliceRequest::devices(8)).unwrap();
            let mut b = client.trace(format!("p{c}"));
            b.computation(
                FnSpec::compute_only("step", SimDuration::from_micros(100 + c as u64 * 37))
                    .with_allreduce(4),
                &slice,
            );
            let program = b.build().unwrap();
            let prepared = client.prepare(&program);
            sim.spawn(format!("client{c}"), async move {
                for _ in 0..4 {
                    client.run(&prepared).await;
                }
            });
        }
        sim.run_to_quiescence();
        format!("{:?}", sim.take_trace().spans())
    };
    assert_eq!(run_once(), run_once());
}

/// §4.1: virtual slices survive remapping; programs re-lower and run on
/// the new physical devices.
#[test]
fn remap_and_relower() {
    let mut sim = Sim::new(0);
    let rt = PathwaysRuntime::new(
        &sim,
        ClusterSpec::config_b(2),
        NetworkParams::tpu_cluster(),
        PathwaysConfig::default(),
    );
    let client = rt.client(HostId(0));
    let slice = client.virtual_slice(SliceRequest::devices(4)).unwrap();
    let before = slice.physical_devices();
    let mut b = client.trace("remap");
    b.computation(
        FnSpec::compute_only("f", SimDuration::from_micros(10)),
        &slice,
    );
    let program = b.build().unwrap();
    // Run on the original mapping.
    let prepared = client.prepare(&program);
    let c2 = client.clone();
    sim.spawn("r1", async move {
        c2.run(&prepared).await;
    });
    sim.run_to_quiescence();
    // Remap to different physical devices and re-lower.
    let new: Vec<_> = (12..16).map(pathways::net::DeviceId).collect();
    rt.resource_manager().remap(&slice, new.clone());
    assert_ne!(before, slice.physical_devices());
    let prepared = client.prepare(&program);
    assert_eq!(prepared.info().devices[0], new);
    let c3 = client.clone();
    let job = sim.spawn("r2", async move { c3.run(&prepared).await.objects().len() });
    sim.run_to_quiescence();
    assert_eq!(job.try_take(), Some(1));
    // The new devices did the work.
    let dev = &rt.core().devices[&new[0]];
    assert_eq!(dev.stats().kernels, 1);
}
