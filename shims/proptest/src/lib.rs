//! Offline shim of `proptest`: the subset of the API this workspace's
//! property tests use, generating inputs from a deterministic seeded
//! RNG. There is no shrinking — a failing case reports its inputs via
//! the panic message and its case index, which is stable across runs
//! because every case's seed is a pure function of the test body's
//! address-independent case counter.

pub mod strategy {
    //! Input-generation strategies.

    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of test-case inputs.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.rng.random_range(0..span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng.random()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.rng.random::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Element-count selector for [`vec`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `elem`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo
                + rng
                    .rng
                    .random_range(0..(self.size.hi - self.size.lo) as u64)
                    as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vectors of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Case-execution plumbing used by the [`proptest!`](crate::proptest)
    //! macro expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Smaller than upstream's 256: cases are uniform draws with
            // no shrinking, and several suites simulate whole clusters
            // per case.
            ProptestConfig { cases: 32 }
        }
    }

    /// The deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        /// Underlying generator (public for strategy impls).
        pub rng: StdRng,
    }

    impl TestRng {
        /// RNG for the `case`-th case of a test: a fixed base seed mixed
        /// with the case index, so runs are reproducible.
        pub fn for_case(case: u32) -> Self {
            TestRng {
                rng: StdRng::seed_from_u64(0x70726F70_u64 ^ ((case as u64) << 32 | case as u64)),
            }
        }
    }

    /// A failed assertion inside a property body.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Constructs a failure with `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }
}

pub mod prelude {
    //! The glob-imported surface: strategies, config, and macros.
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}; ")),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("property failed at case {}: {}\n  inputs: {}", __case, e, __inputs);
                }
            }
        }
    )*};
}

/// Asserts `cond`, failing the current case (not the whole process) with
/// the inputs that produced it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    }};
}

/// Asserts two values differ, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, v in collection::vec(0u8..4, 2..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|b| *b < 4));
        }

        #[test]
        fn tuples_compose(pair in (1u64..5, any::<bool>())) {
            prop_assert!((1..5).contains(&pair.0));
            let _: bool = pair.1;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = collection::vec(0u64..1_000, 1..40);
        let mut a = crate::test_runner::TestRng::for_case(5);
        let mut b = crate::test_runner::TestRng::for_case(5);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
