//! Offline shim of `criterion`: same macro/builder surface, simple
//! wall-clock measurement. Each benchmark is warmed once, then timed
//! over `sample_size` iterations; the mean per-iteration time is
//! printed. No statistics, plots, or baselines — enough to spot
//! order-of-magnitude regressions in the simulator's hot paths.

// Benchmarks measure wall time by definition; the workspace-wide
// Instant ban (clippy.toml) does not apply to the harness shim.
#![allow(clippy::disallowed_types)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export: prevents the optimizer from deleting benchmarked work.
pub use std::hint::black_box;

/// Benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Per-iteration timing driver passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        mean_ns: f64::NAN,
    };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e9 {
        (b.mean_ns / 1e9, "s")
    } else if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!("bench {label:<48} {value:>10.3} {unit}/iter ({iters} iters)");
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Sets the iteration count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs `f` as the benchmark `id` with `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs `f` as the benchmark named `name`.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
