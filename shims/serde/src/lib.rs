//! Offline shim of `serde`: marker traits and derives. The workspace
//! tags its config/ID types `Serialize`/`Deserialize` so a future PR
//! can swap in real serde without touching every type; until then the
//! traits carry no methods and the derives emit marker impls only.

pub use serde_derive::{Deserialize, Serialize};

/// Marker: this type is serializable once a real serde is wired in.
pub trait Serialize {}

/// Marker: this type is deserializable once a real serde is wired in.
pub trait Deserialize {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {} impl Deserialize for $t {})*
    };
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<T: Deserialize + ?Sized> Deserialize for Box<T> {}
impl Serialize for str {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}
// Marker impls must cover the std container the real serde covers;
// the workspace-wide HashMap ban (clippy.toml) targets usage, not
// trait coverage.
#[allow(clippy::disallowed_types)]
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
#[allow(clippy::disallowed_types)]
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}
impl<T: Serialize> Serialize for [T] {}
