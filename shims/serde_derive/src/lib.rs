//! Offline shim of `serde_derive`. The workspace derives
//! `Serialize`/`Deserialize` purely as a forward-compatibility marker —
//! nothing serializes yet — so the derives expand to marker trait impls
//! and intentionally reject `#[serde(...)]` attributes (none are used).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword and any
/// generic parameter names, skipping attributes and visibility.
fn parse_item(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    let mut generics = Vec::new();
                    // A following `<` introduces generic params; collect
                    // the parameter idents (lifetimes are skipped).
                    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        tokens.next();
                        let mut depth = 1usize;
                        let mut at_param_start = true;
                        while let Some(tt) = tokens.next() {
                            match tt {
                                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                                TokenTree::Punct(p) if p.as_char() == '>' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                                    at_param_start = true;
                                }
                                TokenTree::Ident(id) if at_param_start && depth == 1 => {
                                    let s = id.to_string();
                                    if s != "const" {
                                        generics.push(s);
                                        at_param_start = false;
                                    }
                                }
                                TokenTree::Punct(p) if p.as_char() == '\'' => {
                                    // Lifetime: swallow the ident after it.
                                    tokens.next();
                                    at_param_start = false;
                                }
                                _ => at_param_start = false,
                            }
                        }
                    }
                    return Some((name.to_string(), generics));
                }
            }
        }
    }
    None
}

fn marker_impl(trait_name: &str, input: TokenStream) -> TokenStream {
    let Some((name, generics)) = parse_item(input) else {
        return TokenStream::new();
    };
    let impl_block = if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name} {{}}")
    } else {
        let params = generics.join(", ");
        let bounds = generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!("impl<{params}> ::serde::{trait_name} for {name}<{params}> where {bounds} {{}}")
    };
    impl_block.parse().unwrap_or_default()
}

/// Marker derive for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("Serialize", input)
}

/// Marker derive for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("Deserialize", input)
}
