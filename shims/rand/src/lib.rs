//! Offline shim of the `rand` facade: a deterministic, seedable
//! xoshiro256++ generator behind the `StdRng` / `SeedableRng` / `RngExt`
//! names this workspace imports. Determinism across runs and platforms
//! is the only quality bar the simulator needs; this is NOT a
//! cryptographic generator.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable from an RNG via [`RngExt::random`].
pub trait FromRng {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience draws layered over [`RngCore`] (the rand 0.9 `Rng`
/// surface this workspace touches).
pub trait RngExt: RngCore {
    /// Draws a uniformly random value.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from `range` (half-open). Uses rejection
    /// sampling, so the distribution is exactly uniform.
    fn random_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        if span.is_power_of_two() {
            return range.start + (self.next_u64() & (span - 1));
        }
        // Rejection zone keeps the draw unbiased.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + v % span;
            }
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(10..17);
            assert!((10..17).contains(&v));
        }
    }
}
