//! Offline shim of `parking_lot`: a `Mutex` with the non-poisoning
//! `lock()` signature, backed by `std::sync::Mutex`. Only the API this
//! workspace uses is provided.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Poisoning is
    /// ignored (parking_lot has no poisoning either).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
